//! Shared measurement helpers for the figure/table report binaries and the
//! `benches/figures.rs` bench suite (on the in-repo `meissa_testkit::bench`
//! timer). Each paper artifact has a binary in `src/bin/` that regenerates
//! it:
//!
//! | artifact | binary |
//! |---|---|
//! | Table 1 (program inventory) | `table1` |
//! | Fig. 9 (tool × program running time) | `fig9` |
//! | Fig. 10 (Meissa vs Aquila across rule sets) | `fig10` |
//! | Fig. 11a/b/c (code summary across programs) | `fig11` |
//! | Fig. 12a/b/c (code summary across rule sets, gw-4) | `fig12` |
//! | Table 2 (bug × tool matrix) | `table2` |
//!
//! `EXPERIMENTS.md` at the workspace root records one captured run of each
//! against the paper's numbers.

use meissa_core::{Meissa, MeissaConfig, RunOutput};
use meissa_num::BigUint;
use meissa_suite::Workload;
use meissa_testkit::json::{FromJson, Json, JsonError, ToJson};
use std::time::{Duration, Instant};

/// One engine measurement.
#[derive(Clone, Debug)]
pub struct EngineRun {
    /// Wall-clock seconds.
    pub secs: f64,
    /// SMT checks issued (Fig. 11b/12b metric).
    pub smt_checks: u64,
    /// Templates generated (valid paths).
    pub templates: usize,
    /// log10 of possible paths in the CFG the final generation ran on
    /// (Fig. 11c/12c metric).
    pub log10_paths: f64,
    /// SAT-engine invocations behind the checks — the cost `smt_checks`
    /// alone hides: fast paths, verdict-cache hits, model reuse, and
    /// batched assumption probes all answer checks without one.
    pub sat_engine_calls: u64,
    /// Sibling-arm probes answered through batched `check_under` calls.
    pub batched_probes: u64,
    /// Batched sibling probes issued (≥ 2 arms each).
    pub arm_batches: u64,
    /// Verdict-cache lookups issued by arm pruning.
    pub cache_probes: u64,
    /// Verdict-cache lookups answered without touching a backend.
    pub cache_hits: u64,
    /// Cache-miss probes the router sent to the incremental SMT solver.
    pub backend_routed_smt: u64,
    /// Cache-miss probes the router sent to the BDD engine.
    pub backend_routed_bdd: u64,
    /// Individual arm/set verdicts the BDD engine answered.
    pub bdd_probes: u64,
    /// True when the time budget expired.
    pub timed_out: bool,
}

impl ToJson for EngineRun {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("secs".into(), self.secs.to_json()),
            ("smt_checks".into(), self.smt_checks.to_json()),
            ("templates".into(), self.templates.to_json()),
            ("log10_paths".into(), self.log10_paths.to_json()),
            ("sat_engine_calls".into(), self.sat_engine_calls.to_json()),
            ("batched_probes".into(), self.batched_probes.to_json()),
            ("arm_batches".into(), self.arm_batches.to_json()),
            ("cache_probes".into(), self.cache_probes.to_json()),
            ("cache_hits".into(), self.cache_hits.to_json()),
            ("backend_routed_smt".into(), self.backend_routed_smt.to_json()),
            ("backend_routed_bdd".into(), self.backend_routed_bdd.to_json()),
            ("bdd_probes".into(), self.bdd_probes.to_json()),
            ("timed_out".into(), self.timed_out.to_json()),
        ])
    }
}

impl FromJson for EngineRun {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(EngineRun {
            secs: FromJson::from_json(v.field("secs")?)
                .map_err(|e: JsonError| e.context("EngineRun.secs"))?,
            smt_checks: FromJson::from_json(v.field("smt_checks")?)
                .map_err(|e: JsonError| e.context("EngineRun.smt_checks"))?,
            templates: FromJson::from_json(v.field("templates")?)
                .map_err(|e: JsonError| e.context("EngineRun.templates"))?,
            log10_paths: FromJson::from_json(v.field("log10_paths")?)
                .map_err(|e: JsonError| e.context("EngineRun.log10_paths"))?,
            // Counters introduced after the first captured runs: absent in
            // old JSON, so default to 0 rather than failing the parse.
            sat_engine_calls: v
                .field("sat_engine_calls")
                .ok()
                .map_or(Ok(0), FromJson::from_json)
                .map_err(|e: JsonError| e.context("EngineRun.sat_engine_calls"))?,
            batched_probes: v
                .field("batched_probes")
                .ok()
                .map_or(Ok(0), FromJson::from_json)
                .map_err(|e: JsonError| e.context("EngineRun.batched_probes"))?,
            arm_batches: v
                .field("arm_batches")
                .ok()
                .map_or(Ok(0), FromJson::from_json)
                .map_err(|e: JsonError| e.context("EngineRun.arm_batches"))?,
            cache_probes: v
                .field("cache_probes")
                .ok()
                .map_or(Ok(0), FromJson::from_json)
                .map_err(|e: JsonError| e.context("EngineRun.cache_probes"))?,
            cache_hits: v
                .field("cache_hits")
                .ok()
                .map_or(Ok(0), FromJson::from_json)
                .map_err(|e: JsonError| e.context("EngineRun.cache_hits"))?,
            backend_routed_smt: v
                .field("backend_routed_smt")
                .ok()
                .map_or(Ok(0), FromJson::from_json)
                .map_err(|e: JsonError| e.context("EngineRun.backend_routed_smt"))?,
            backend_routed_bdd: v
                .field("backend_routed_bdd")
                .ok()
                .map_or(Ok(0), FromJson::from_json)
                .map_err(|e: JsonError| e.context("EngineRun.backend_routed_bdd"))?,
            bdd_probes: v
                .field("bdd_probes")
                .ok()
                .map_or(Ok(0), FromJson::from_json)
                .map_err(|e: JsonError| e.context("EngineRun.bdd_probes"))?,
            timed_out: FromJson::from_json(v.field("timed_out")?)
                .map_err(|e: JsonError| e.context("EngineRun.timed_out"))?,
        })
    }
}

/// Runs an engine configuration on a workload and collects the numbers.
pub fn measure(w: &Workload, config: MeissaConfig) -> EngineRun {
    let engine = Meissa { config };
    let t0 = Instant::now();
    let out: RunOutput = engine.run(&w.program);
    EngineRun {
        secs: t0.elapsed().as_secs_f64(),
        smt_checks: out.stats.smt_checks,
        templates: out.templates.len(),
        log10_paths: out.stats.paths_after.log10(),
        sat_engine_calls: out.stats.solver.sat_engine_calls,
        batched_probes: out.stats.batched_probes,
        arm_batches: out.stats.arm_batches,
        cache_probes: out.stats.cache_probes,
        cache_hits: out.stats.cache_hits,
        backend_routed_smt: out.stats.backend_routed_smt,
        backend_routed_bdd: out.stats.backend_routed_bdd,
        bdd_probes: out.stats.bdd_probes,
        timed_out: out.stats.timed_out,
    }
}

/// Meissa's full configuration with an optional budget.
pub fn meissa_config(budget: Option<Duration>) -> MeissaConfig {
    MeissaConfig {
        time_budget: budget,
        ..MeissaConfig::default()
    }
}

/// The "w/o code summary" ablation configuration.
pub fn no_summary_config(budget: Option<Duration>) -> MeissaConfig {
    MeissaConfig {
        code_summary: false,
        time_budget: budget,
        ..MeissaConfig::default()
    }
}

/// log10 of a CFG's possible-path count.
pub fn log10_paths(w: &Workload) -> f64 {
    meissa_ir::count_paths(&w.program.cfg).total.log10()
}

/// Pretty seconds-or-status cell for figure tables.
pub fn cell(run: &EngineRun) -> String {
    if run.timed_out {
        "timeout".to_string()
    } else {
        format!("{:.2}s", run.secs)
    }
}

/// Renders a big path count for Fig. 11c-style columns.
pub fn paths_cell(log10: f64) -> String {
    format!("10^{log10:.1}")
}

/// The full evaluation corpus in Table 1 order: the four open-source
/// programs (random rule sets, §5.1) and gw-1..gw-4 (set-1..set-4).
pub fn full_corpus() -> Vec<Workload> {
    let mut v = meissa_suite::open_source_corpus();
    for level in 1..=4 {
        v.push(meissa_suite::gw::gw_default(level));
    }
    v
}

/// Exact possible-path count of a workload.
pub fn possible_paths(w: &Workload) -> BigUint {
    meissa_ir::count_paths(&w.program.cfg).total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_consistent_numbers() {
        let w = meissa_suite::router(4, 1);
        let run = measure(&w, meissa_config(None));
        assert!(!run.timed_out);
        assert!(run.templates > 0);
        assert!(run.smt_checks > 0);
        assert!(run.log10_paths >= 0.0);
    }

    #[test]
    fn corpus_has_eight_programs() {
        let names: Vec<String> = full_corpus().into_iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec!["Router", "mTag", "ACL", "switch.p4", "gw-1", "gw-2", "gw-3", "gw-4"]
        );
    }

    #[test]
    fn cells_render() {
        let ok = EngineRun {
            secs: 1.234,
            smt_checks: 10,
            templates: 5,
            log10_paths: 42.0,
            sat_engine_calls: 7,
            batched_probes: 6,
            arm_batches: 2,
            cache_probes: 8,
            cache_hits: 3,
            backend_routed_smt: 4,
            backend_routed_bdd: 2,
            bdd_probes: 2,
            timed_out: false,
        };
        assert_eq!(cell(&ok), "1.23s");
        let to = EngineRun {
            timed_out: true,
            ..ok
        };
        assert_eq!(cell(&to), "timeout");
        assert_eq!(paths_cell(197.0), "10^197.0");
    }
}
