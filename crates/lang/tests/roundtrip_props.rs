//! Property tests for the frontend's serialization round-trips.

use meissa_lang::{parse_rules, KeyMatch, Rule, RuleSet};
use meissa_testkit::prop::{self, G};
use meissa_testkit::{prop_assert_eq, ToJson};

fn arb_key(g: &mut G) -> KeyMatch {
    match g.index(5) {
        0 => KeyMatch::Exact(g.u64() as u128),
        1 => KeyMatch::Prefix(g.u64() as u128, g.range(0..=32u16)),
        2 => KeyMatch::Ternary(g.u64() as u128, g.u64() as u128),
        3 => {
            let (a, b) = (g.u32(), g.u32());
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            KeyMatch::Range(lo as u128, hi as u128)
        }
        _ => KeyMatch::Any,
    }
}

fn arb_rule(g: &mut G) -> Rule {
    let keys = (0..g.len(1, 3)).map(|_| arb_key(g)).collect();
    let action = g.ident(8);
    let args = (0..g.len(0, 2)).map(|_| g.u32() as u128).collect();
    Rule { keys, action, args }
}

/// `RuleSet::to_text` → `parse_rules` is the identity on rules.
#[test]
fn rule_set_text_roundtrip() {
    prop::check(prop::DEFAULT_CASES, |g| {
        let rules: Vec<Rule> = (0..g.len(1, 7)).map(|_| arb_rule(g)).collect();
        let mut set = RuleSet::new();
        for r in &rules {
            set.push("t", r.clone());
        }
        let text = set.to_text();
        let back = parse_rules(&text).map_err(|e| format!("{e}\n{text}"))?;
        prop_assert_eq!(back.rules_for("t"), set.rules_for("t"));
        Ok(())
    });
}

/// JSON encode → decode is the identity on rule sets (and re-encoding is
/// byte-stable).
#[test]
fn rule_set_json_roundtrip() {
    use meissa_testkit::FromJson;
    prop::check(prop::DEFAULT_CASES, |g| {
        let mut set = RuleSet::new();
        for _ in 0..g.len(1, 5) {
            set.push("t", arb_rule(g));
        }
        let text = set.to_json_text();
        let back = RuleSet::from_json_text(&text).map_err(|e| format!("{e}\n{text}"))?;
        prop_assert_eq!(back.rules_for("t"), set.rules_for("t"));
        prop_assert_eq!(back.to_json_text(), text);
        Ok(())
    });
}

/// LOC counting is insensitive to blank-line padding.
#[test]
fn loc_ignores_padding() {
    prop::check(prop::DEFAULT_CASES, |g| {
        let n = g.len(0, 9);
        let body = "header h { a: 8; }\naction f() { }\n";
        let padded = format!("{}{}", "\n".repeat(n), body);
        prop_assert_eq!(meissa_lang::count_loc(&padded), meissa_lang::count_loc(body));
        Ok(())
    });
}
