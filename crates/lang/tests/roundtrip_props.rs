//! Property tests for the frontend's serialization round-trips.

use meissa_lang::{parse_rules, KeyMatch, Rule, RuleSet};
use proptest::prelude::*;

fn key_strategy() -> impl Strategy<Value = KeyMatch> {
    prop_oneof![
        any::<u64>().prop_map(|v| KeyMatch::Exact(v as u128)),
        (any::<u64>(), 0u16..=32).prop_map(|(v, l)| KeyMatch::Prefix(v as u128, l)),
        (any::<u64>(), any::<u64>())
            .prop_map(|(v, m)| KeyMatch::Ternary(v as u128, m as u128)),
        (any::<u32>(), any::<u32>()).prop_map(|(a, b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            KeyMatch::Range(lo as u128, hi as u128)
        }),
        Just(KeyMatch::Any),
    ]
}

fn rule_strategy() -> impl Strategy<Value = Rule> {
    (
        prop::collection::vec(key_strategy(), 1..4),
        "[a-z][a-z0-9_]{0,8}",
        prop::collection::vec(any::<u32>().prop_map(|v| v as u128), 0..3),
    )
        .prop_map(|(keys, action, args)| Rule { keys, action, args })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `RuleSet::to_text` → `parse_rules` is the identity on rules.
    #[test]
    fn rule_set_text_roundtrip(rules in prop::collection::vec(rule_strategy(), 1..8)) {
        let mut set = RuleSet::new();
        for r in &rules {
            set.push("t", r.clone());
        }
        let text = set.to_text();
        let back = parse_rules(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        prop_assert_eq!(back.rules_for("t"), set.rules_for("t"));
    }

    /// LOC counting is insensitive to blank-line padding.
    #[test]
    fn loc_ignores_padding(n in 0usize..10) {
        let body = "header h { a: 8; }\naction f() { }\n";
        let padded = format!("{}{}", "\n".repeat(n), body);
        prop_assert_eq!(meissa_lang::count_loc(&padded), meissa_lang::count_loc(body));
    }
}
