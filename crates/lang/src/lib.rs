//! The **P4lite** frontend.
//!
//! The paper's frontend (12.5 kLoC of Java) encodes the bf-p4c intermediate
//! representation of real P4-16 programs. This crate rebuilds that layer for
//! a P4-16-shaped DSL that keeps every construct Meissa's encoding relies
//! on — headers with validity bits, a parser state machine with
//! `extract`/`select`, match-action tables with exact/lpm/ternary/range
//! keys, actions with runtime parameters, structured control flow, hash and
//! checksum builtins, registers (modeled per §4), multi-pipeline /
//! multi-switch topology with traffic-manager steering predicates, and an
//! LPI-like intent language — while dropping P4 syntax noise.
//!
//! Pipeline overview:
//!
//! ```text
//! source text ─lexer→ tokens ─parser→ ast::Program ┐
//! rule text  ─rules::parse_rules→ RuleSet          ├─compile→ CompiledProgram
//! (intents are part of the source text)            ┘            (meissa_ir::Cfg + layouts)
//! ```
//!
//! See `examples/quickstart.rs` at the workspace root for the language in
//! action, and `meissa-suite` for the full evaluation corpus written in it.

pub mod ast;
pub mod compile;
pub mod json;
pub mod lexer;
pub mod lint;
pub mod parser;
pub mod rules;

pub use ast::Program;
pub use compile::{compile, CompiledIntent, CompiledProgram, HeaderLayout, RegisterLayout};
pub use lint::{lint, Lint};
pub use parser::{parse_program, ParseError};
pub use rules::{parse_rules, KeyMatch, Rule, RuleSet};

/// Counts source lines of code the way Table 1 does: non-empty lines that
/// are not pure comments.
pub fn count_loc(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#') && !l.starts_with("//"))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_ignores_blanks_and_comments() {
        let src = "header h { a: 8; }\n\n# comment\n// another\n  \naction f() { }\n";
        assert_eq!(count_loc(src), 2);
    }
}
