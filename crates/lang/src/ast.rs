//! Abstract syntax of P4lite programs.
//!
//! Names in the AST are unresolved strings; resolution against declarations
//! (and interning into `meissa_ir::FieldTable`) happens in [`mod@crate::compile`].

use meissa_ir::HashAlg;

/// A whole program: every top-level declaration plus the intent specs.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Header type declarations, in declaration order (which is also the
    /// packet serialization order used by the deparser default).
    pub headers: Vec<HeaderDecl>,
    /// Metadata blocks (per-packet scratch state, not serialized).
    pub metadatas: Vec<MetadataDecl>,
    /// Register arrays (stateful memory, modeled statelessly per §4).
    pub registers: Vec<RegisterDecl>,
    /// Named parsers.
    pub parsers: Vec<ParserDecl>,
    /// Actions.
    pub actions: Vec<ActionDecl>,
    /// Match-action tables.
    pub tables: Vec<TableDecl>,
    /// Control blocks.
    pub controls: Vec<ControlDecl>,
    /// Pipeline declarations binding a parser and a control.
    pub pipelines: Vec<PipelineDecl>,
    /// Topology edges wiring pipelines together (with optional
    /// traffic-manager steering predicates).
    pub topology: Vec<TopoEdge>,
    /// Deparser emit order (header names). Empty means "declaration order".
    pub deparser: Vec<String>,
    /// LPI-like intent specifications.
    pub intents: Vec<IntentDecl>,
    /// Source lines of code (Table 1 metric), filled by the parser.
    pub loc: usize,
}

/// `header name { field: width; … }`
#[derive(Clone, Debug)]
pub struct HeaderDecl {
    /// Header type name.
    pub name: String,
    /// Fields in wire order: (name, width in bits).
    pub fields: Vec<(String, u16)>,
}

impl HeaderDecl {
    /// Total width of the header in bits.
    pub fn width_bits(&self) -> u32 {
        self.fields.iter().map(|(_, w)| *w as u32).sum()
    }
}

/// `metadata name { field: width; … }`
#[derive(Clone, Debug)]
pub struct MetadataDecl {
    /// Block name (fields are referenced as `name.field`).
    pub name: String,
    /// Fields: (name, width in bits).
    pub fields: Vec<(String, u16)>,
}

/// `register name[size]: width;`
#[derive(Clone, Debug)]
pub struct RegisterDecl {
    /// Register array name.
    pub name: String,
    /// Number of cells.
    pub size: u32,
    /// Cell width in bits.
    pub width: u16,
}

/// `parser name { state start { … } … }`
#[derive(Clone, Debug)]
pub struct ParserDecl {
    /// Parser name.
    pub name: String,
    /// States; must include one named `start`.
    pub states: Vec<ParserState>,
}

/// One parser state: extracts then a transition.
#[derive(Clone, Debug)]
pub struct ParserState {
    /// State name.
    pub name: String,
    /// Headers extracted, in order.
    pub extracts: Vec<String>,
    /// Where to go next.
    pub transition: Transition,
}

/// Parser state transition.
#[derive(Clone, Debug)]
pub enum Transition {
    /// Finish parsing and enter the control.
    Accept,
    /// Unconditional jump to another state.
    Goto(String),
    /// `select (expr) { pat => state; …; default => state|accept; }`
    Select {
        /// The scrutinee expression.
        scrutinee: Expr,
        /// Arms in priority order: (pattern, target state or `accept`).
        arms: Vec<(SelectPattern, String)>,
        /// Default target (state name or `accept`).
        default: String,
    },
}

/// A select arm pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectPattern {
    /// Exact value.
    Exact(u128),
    /// Value under mask: matches when `(x & mask) == (value & mask)`.
    Mask(u128, u128),
    /// Inclusive range.
    Range(u128, u128),
}

/// `action name(param: width, …) { stmt; … }`
#[derive(Clone, Debug)]
pub struct ActionDecl {
    /// Action name.
    pub name: String,
    /// Runtime parameters: (name, width).
    pub params: Vec<(String, u16)>,
    /// Body statements.
    pub body: Vec<ActionStmt>,
}

/// An action body statement.
#[derive(Clone, Debug)]
pub enum ActionStmt {
    /// `lvalue = expr;`
    Assign(LValue, Expr),
    /// `hdr.setValid();` — make a header valid (e.g. tunnel encap).
    SetValid(String),
    /// `hdr.setInvalid();` — make a header invalid (decap).
    SetInvalid(String),
}

/// Assignment target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LValue {
    /// A dotted field reference: `hdr.ipv4.ttl` or `meta.port`.
    Field(String),
    /// A register cell with a constant index (§4 requires constant indices).
    Register(String, u32),
}

/// Surface expressions (arithmetic sort).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal (width inferred from context).
    Num(u128),
    /// Dotted field reference.
    Field(String),
    /// Register cell read with a constant index.
    Register(String, u32),
    /// Action parameter reference (only valid inside action bodies).
    Param(String),
    /// Binary arithmetic.
    Bin(meissa_ir::AOp, Box<Expr>, Box<Expr>),
    /// Bitwise NOT.
    Not(Box<Expr>),
    /// Shift left by constant.
    Shl(Box<Expr>, u16),
    /// Shift right by constant.
    Shr(Box<Expr>, u16),
    /// `hash(alg, width, args…)` builtin (§4 semantics).
    Hash(HashAlg, u16, Vec<Expr>),
}

impl Expr {
    /// Convenience constructor for binary expressions.
    pub fn bin(op: meissa_ir::AOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }
}

/// Surface boolean conditions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Cond {
    /// Constant.
    Bool(bool),
    /// Comparison.
    Cmp(meissa_ir::CmpOp, Expr, Expr),
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// Negation.
    Not(Box<Cond>),
    /// `hdr.isValid()` — header validity test.
    IsValid(String),
}

impl Cond {
    /// Convenience conjunction.
    pub fn and(a: Cond, b: Cond) -> Cond {
        Cond::And(Box::new(a), Box::new(b))
    }
}

/// Table key match kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchKind {
    /// Exact match.
    Exact,
    /// Longest-prefix match.
    Lpm,
    /// Value-and-mask match.
    Ternary,
    /// Inclusive range match.
    Range,
}

/// `table name { key = {…}; actions = {…}; default_action = a(args); }`
#[derive(Clone, Debug)]
pub struct TableDecl {
    /// Table name.
    pub name: String,
    /// Key fields and their match kinds, in key order.
    pub keys: Vec<(String, MatchKind)>,
    /// Permitted action names.
    pub actions: Vec<String>,
    /// Default action invocation (name, constant args). `None` means the
    /// implicit no-op default.
    pub default_action: Option<(String, Vec<u128>)>,
    /// Declared capacity (informational; Table 1 scale metric).
    pub size: u32,
}

/// `control name { stmt… }`
#[derive(Clone, Debug)]
pub struct ControlDecl {
    /// Control name.
    pub name: String,
    /// Body statements.
    pub body: Vec<CtrlStmt>,
}

/// Control block statements.
#[derive(Clone, Debug)]
pub enum CtrlStmt {
    /// `apply(table);`
    Apply(String),
    /// `if (cond) { … } else { … }`
    If(Cond, Vec<CtrlStmt>, Vec<CtrlStmt>),
    /// `call action(const args);` — a direct (ruleless) action invocation.
    Call(String, Vec<u128>),
}

/// `pipeline name { parser = p; control = c; }`
#[derive(Clone, Debug)]
pub struct PipelineDecl {
    /// Pipeline name (may encode the switch, e.g. `sw0_ingress0`).
    pub name: String,
    /// Parser to run at pipeline entry; `None` skips parsing (the pipeline
    /// sees the predecessor's header state unchanged).
    pub parser: Option<String>,
    /// Control to run.
    pub control: String,
}

/// `from -> to [when (cond)];` inside `topology { … }`.
#[derive(Clone, Debug)]
pub struct TopoEdge {
    /// Source: `start` or a pipeline name.
    pub from: String,
    /// Destination: `end` or a pipeline name.
    pub to: String,
    /// Optional traffic-manager steering predicate.
    pub when: Option<Cond>,
}

/// `intent name { given cond; expect cond; }`
#[derive(Clone, Debug)]
pub struct IntentDecl {
    /// Intent name.
    pub name: String,
    /// Constraint on input packets this intent covers.
    pub given: Cond,
    /// Property the output must satisfy.
    pub expect: Cond,
}
