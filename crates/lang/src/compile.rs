//! Compiling P4lite + table rules into the `meissa-ir` CFG (paper §3.1).
//!
//! The encoding follows §3.1 exactly:
//!
//! * **parser states** become chains of action nodes (`hdr.X.$valid ← 1` per
//!   `extract`) followed by predicate forks for `select` arms;
//! * **tables** become predicate forks — one branch per installed rule whose
//!   condition is the rule's match expression (plus negations of
//!   *statically-overlapping* higher-priority rules, so first-match-wins
//!   semantics are preserved without bloating disjoint tables), and one
//!   default branch guarded by the negation of every rule;
//! * **actions** are instantiated per call site with rule arguments
//!   substituted as constants, each statement becoming an action node;
//! * **pipelines** are bracketed by no-op entry/exit markers (the regions
//!   Algorithm 2 summarizes), and topology edges — including
//!   traffic-manager `when` predicates — wire exit markers to entry markers;
//! * **registers** are modeled per §4: `reg[i]` with constant `i` becomes
//!   the synthetic field `REG:reg-POS:i`.

use crate::ast::*;
use crate::rules::{KeyMatch, Rule, RuleSet};
use meissa_ir::{AExp, BExp, Cfg, CfgBuilder, CmpOp, FieldId, NodeId, RuleArm, Stmt};
use meissa_num::Bv;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A compile failure.
#[derive(Clone, Debug)]
pub struct CompileError {
    /// Explanation.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError {
        message: msg.into(),
    })
}

/// Byte-level layout of one header, used by the test driver to serialize
/// and parse concrete packets.
#[derive(Clone, Debug)]
pub struct HeaderLayout {
    /// Header type name.
    pub name: String,
    /// Fields in wire order: (full field name, id, width).
    pub fields: Vec<(String, FieldId, u16)>,
    /// The validity bit field.
    pub valid: FieldId,
}

impl HeaderLayout {
    /// Total header width in bits.
    pub fn width_bits(&self) -> u32 {
        self.fields.iter().map(|(_, _, w)| *w as u32).sum()
    }
}

/// Declared shape of one register array, plus the cells the program's code
/// actually references (interned as `REG:name-POS:idx` fields, §4). Cells a
/// program never reads or writes cannot influence any packet's fate, so
/// they are not materialized as fields — this keeps the register state
/// space the k-packet unroller threads (and the concrete register file the
/// switch target keeps) exactly as large as the observable one.
#[derive(Clone, Debug)]
pub struct RegisterLayout {
    /// Register array name.
    pub name: String,
    /// Declared number of cells.
    pub size: u32,
    /// Cell width in bits.
    pub width: u16,
    /// Referenced cells as (index, field id), in index order.
    pub cells: Vec<(u32, FieldId)>,
}

/// An intent with conditions compiled to IR expressions.
#[derive(Clone, Debug)]
pub struct CompiledIntent {
    /// Intent name.
    pub name: String,
    /// Input constraint.
    pub given: BExp,
    /// Output property.
    pub expect: BExp,
}

/// The full compilation result: the CFG plus everything the test driver
/// needs to materialize packets and check intents.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// The control flow graph.
    pub cfg: Cfg,
    /// The source AST (the software switch target re-executes the parser
    /// spec at byte level and must not depend on the CFG encoding).
    pub source: Program,
    /// Header layouts, in declaration order.
    pub headers: Vec<HeaderLayout>,
    /// Deparser emit order (header names).
    pub deparse_order: Vec<String>,
    /// Compiled intents.
    pub intents: Vec<CompiledIntent>,
    /// Register arrays in declaration order, with their referenced cells.
    pub registers: Vec<RegisterLayout>,
    /// Program source LOC (Table 1).
    pub loc: usize,
    /// Rule document LOC (Table 1 rule-set scale).
    pub rules_loc: usize,
    /// Number of pipelines (Table 1 "# of pipes").
    pub num_pipes: usize,
    /// Number of switches, derived from `swN_`-prefixed pipeline names
    /// (Table 1 "# of switches"); 1 when no prefix convention is used.
    pub num_switches: usize,
}

impl CompiledProgram {
    /// The layout of a header by name.
    pub fn header(&self, name: &str) -> Option<&HeaderLayout> {
        self.headers.iter().find(|h| h.name == name)
    }
}

/// Compiles a parsed program and its rule set into a [`CompiledProgram`].
pub fn compile(prog: &Program, rules: &RuleSet) -> Result<CompiledProgram, CompileError> {
    let mut c = Compiler::new(prog, rules)?;
    c.run()?;
    c.finish()
}

struct Compiler<'a> {
    prog: &'a Program,
    rules: &'a RuleSet,
    b: CfgBuilder,
    headers: HashMap<String, &'a HeaderDecl>,
    metadatas: HashMap<String, &'a MetadataDecl>,
    registers: HashMap<String, &'a RegisterDecl>,
    actions: HashMap<String, &'a ActionDecl>,
    tables: HashMap<String, &'a TableDecl>,
    controls: HashMap<String, &'a ControlDecl>,
    parsers: HashMap<String, &'a ParserDecl>,
    pipelines: HashMap<String, &'a PipelineDecl>,
    layouts: Vec<HeaderLayout>,
}

/// Action-parameter bindings at an instantiation site.
type ParamEnv = HashMap<String, Bv>;

impl<'a> Compiler<'a> {
    fn new(prog: &'a Program, rules: &'a RuleSet) -> Result<Self, CompileError> {
        fn index<'x, T>(
            items: &'x [T],
            name_of: impl Fn(&T) -> &str,
            kind: &str,
        ) -> Result<HashMap<String, &'x T>, CompileError> {
            let mut map = HashMap::new();
            for item in items {
                if map.insert(name_of(item).to_string(), item).is_some() {
                    return err(format!("duplicate {kind} `{}`", name_of(item)));
                }
            }
            Ok(map)
        }
        Ok(Compiler {
            prog,
            rules,
            b: CfgBuilder::new(),
            headers: index(&prog.headers, |h| &h.name, "header")?,
            metadatas: index(&prog.metadatas, |m| &m.name, "metadata block")?,
            registers: index(&prog.registers, |r| &r.name, "register")?,
            actions: index(&prog.actions, |a| &a.name, "action")?,
            tables: index(&prog.tables, |t| &t.name, "table")?,
            controls: index(&prog.controls, |c| &c.name, "control")?,
            parsers: index(&prog.parsers, |p| &p.name, "parser")?,
            pipelines: index(&prog.pipelines, |p| &p.name, "pipeline")?,
            layouts: Vec::new(),
        })
    }

    // ----- field resolution ------------------------------------------------

    fn valid_field(&mut self, header: &str) -> Result<FieldId, CompileError> {
        if !self.headers.contains_key(header) {
            return err(format!("unknown header `{header}`"));
        }
        Ok(self
            .b
            .fields_mut()
            .intern(&format!("hdr.{header}.$valid"), 1))
    }

    /// Resolves a dotted field reference to an interned id and width.
    fn field_ref(&mut self, name: &str) -> Result<(FieldId, u16), CompileError> {
        let parts: Vec<&str> = name.split('.').collect();
        match parts.as_slice() {
            // Intents may reference validity bits directly.
            ["hdr", header, "$valid"] => Ok((self.valid_field(header)?, 1)),
            ["hdr", header, field] => {
                let decl = match self.headers.get(*header) {
                    Some(d) => *d,
                    None => return err(format!("unknown header `{header}` in `{name}`")),
                };
                let width = match decl.fields.iter().find(|(f, _)| f == field) {
                    Some((_, w)) => *w,
                    None => return err(format!("header `{header}` has no field `{field}`")),
                };
                Ok((self.b.fields_mut().intern(name, width), width))
            }
            [block, field] => {
                let decl = match self.metadatas.get(*block) {
                    Some(d) => *d,
                    None => return err(format!("unknown metadata block `{block}` in `{name}`")),
                };
                let width = match decl.fields.iter().find(|(f, _)| f == field) {
                    Some((_, w)) => *w,
                    None => return err(format!("metadata `{block}` has no field `{field}`")),
                };
                Ok((self.b.fields_mut().intern(name, width), width))
            }
            _ => err(format!(
                "malformed field reference `{name}` (expected hdr.X.Y or meta.Y)"
            )),
        }
    }

    /// Resolves a register cell per §4: `REG:name-POS:idx`.
    fn register_ref(&mut self, name: &str, idx: u32) -> Result<(FieldId, u16), CompileError> {
        let decl = match self.registers.get(name) {
            Some(d) => *d,
            None => return err(format!("unknown register `{name}`")),
        };
        if idx >= decl.size {
            return err(format!(
                "register index {name}[{idx}] out of bounds (size {})",
                decl.size
            ));
        }
        let width = decl.width;
        Ok((
            self.b
                .fields_mut()
                .intern(&format!("REG:{name}-POS:{idx}"), width),
            width,
        ))
    }

    // ----- expression compilation -------------------------------------------

    /// Infers the width of an expression without compiling it; `None` for
    /// bare literals (whose width comes from context).
    fn infer_width(&mut self, e: &Expr, env: &ParamEnv) -> Result<Option<u16>, CompileError> {
        Ok(match e {
            Expr::Num(_) => None,
            Expr::Field(f) => Some(self.field_ref(f)?.1),
            Expr::Register(r, i) => Some(self.register_ref(r, *i)?.1),
            Expr::Param(p) => match env.get(p) {
                Some(v) => Some(v.width()),
                None => return err(format!("unknown identifier `{p}`")),
            },
            Expr::Bin(_, a, b) => match self.infer_width(a, env)? {
                Some(w) => Some(w),
                None => self.infer_width(b, env)?,
            },
            Expr::Not(a) | Expr::Shl(a, _) | Expr::Shr(a, _) => self.infer_width(a, env)?,
            Expr::Hash(_, w, _) => Some(*w),
        })
    }

    /// Compiles an expression, using `ctx_width` for bare literals.
    fn compile_expr(
        &mut self,
        e: &Expr,
        env: &ParamEnv,
        ctx_width: Option<u16>,
    ) -> Result<(AExp, u16), CompileError> {
        match e {
            Expr::Num(n) => match ctx_width {
                Some(w) => {
                    if w < 128 && *n >= (1u128 << w) {
                        return err(format!("literal {n} does not fit in {w} bits"));
                    }
                    Ok((AExp::Const(Bv::new(w, *n)), w))
                }
                None => err(format!("cannot infer width of literal {n}")),
            },
            Expr::Field(f) => {
                let (id, w) = self.field_ref(f)?;
                Ok((AExp::Field(id), w))
            }
            Expr::Register(r, i) => {
                let (id, w) = self.register_ref(r, *i)?;
                Ok((AExp::Field(id), w))
            }
            Expr::Param(p) => match env.get(p) {
                Some(v) => Ok((AExp::Const(*v), v.width())),
                None => err(format!("unknown identifier `{p}`")),
            },
            Expr::Bin(op, a, b) => {
                let w = match self.infer_width(a, env)? {
                    Some(w) => Some(w),
                    None => self.infer_width(b, env)?,
                }
                .or(ctx_width);
                let (ca, wa) = self.compile_expr(a, env, w)?;
                let (cb, wb) = self.compile_expr(b, env, Some(wa))?;
                if wa != wb {
                    return err(format!("width mismatch in arithmetic: {wa} vs {wb}"));
                }
                Ok((AExp::bin(*op, ca, cb), wa))
            }
            Expr::Not(a) => {
                let (ca, w) = self.compile_expr(a, env, ctx_width)?;
                Ok((AExp::Not(Box::new(ca)), w))
            }
            Expr::Shl(a, n) => {
                let (ca, w) = self.compile_expr(a, env, ctx_width)?;
                Ok((AExp::Shl(Box::new(ca), *n), w))
            }
            Expr::Shr(a, n) => {
                let (ca, w) = self.compile_expr(a, env, ctx_width)?;
                Ok((AExp::Shr(Box::new(ca), *n), w))
            }
            Expr::Hash(alg, w, args) => {
                let mut cargs = Vec::with_capacity(args.len());
                for a in args {
                    let (ca, _) = self.compile_expr(a, env, None)?;
                    cargs.push(ca);
                }
                Ok((AExp::Hash(*alg, *w, cargs), *w))
            }
        }
    }

    /// Compiles a surface condition into an IR boolean expression.
    fn compile_cond(&mut self, c: &Cond, env: &ParamEnv) -> Result<BExp, CompileError> {
        Ok(match c {
            Cond::Bool(true) => BExp::True,
            Cond::Bool(false) => BExp::False,
            Cond::Cmp(op, a, b) => {
                let w = match self.infer_width(a, env)? {
                    Some(w) => Some(w),
                    None => self.infer_width(b, env)?,
                };
                let w = match w {
                    Some(w) => w,
                    None => return err("cannot infer width of comparison between literals"),
                };
                let (ca, _) = self.compile_expr(a, env, Some(w))?;
                let (cb, _) = self.compile_expr(b, env, Some(w))?;
                BExp::Cmp(*op, ca, cb)
            }
            Cond::And(a, b) => BExp::and(self.compile_cond(a, env)?, self.compile_cond(b, env)?),
            Cond::Or(a, b) => BExp::or(self.compile_cond(a, env)?, self.compile_cond(b, env)?),
            Cond::Not(a) => BExp::not(self.compile_cond(a, env)?),
            Cond::IsValid(h) => {
                let v = self.valid_field(h)?;
                BExp::eq(AExp::Field(v), AExp::Const(Bv::new(1, 1)))
            }
        })
    }

    // ----- action instantiation ----------------------------------------------

    /// Instantiates an action body with constant arguments, producing IR
    /// statements.
    fn instantiate_action(
        &mut self,
        name: &str,
        args: &[u128],
    ) -> Result<Vec<Stmt>, CompileError> {
        let decl = match self.actions.get(name) {
            Some(d) => *d,
            None => return err(format!("unknown action `{name}`")),
        };
        if decl.params.len() != args.len() {
            return err(format!(
                "action `{name}` expects {} args, got {}",
                decl.params.len(),
                args.len()
            ));
        }
        let mut env = ParamEnv::new();
        for ((pname, w), &v) in decl.params.iter().zip(args) {
            if *w < 128 && v >= (1u128 << w) {
                return err(format!(
                    "argument {v} for `{name}.{pname}` does not fit in {w} bits"
                ));
            }
            env.insert(pname.clone(), Bv::new(*w, v));
        }
        let body = decl.body.clone();
        let mut out = Vec::new();
        for stmt in &body {
            match stmt {
                ActionStmt::Assign(lv, rhs) => {
                    let (fid, w) = match lv {
                        LValue::Field(f) => self.field_ref(f)?,
                        LValue::Register(r, i) => self.register_ref(r, *i)?,
                    };
                    let (ce, cw) = self.compile_expr(rhs, &env, Some(w))?;
                    if cw != w {
                        return err(format!(
                            "width mismatch assigning {cw}-bit value to {w}-bit target in `{name}`"
                        ));
                    }
                    out.push(Stmt::Assign(fid, ce));
                }
                ActionStmt::SetValid(h) => {
                    let v = self.valid_field(h)?;
                    out.push(Stmt::Assign(v, AExp::Const(Bv::new(1, 1))));
                }
                ActionStmt::SetInvalid(h) => {
                    let v = self.valid_field(h)?;
                    out.push(Stmt::Assign(v, AExp::Const(Bv::new(1, 0))));
                }
            }
        }
        Ok(out)
    }

    // ----- table compilation ---------------------------------------------------

    /// Builds the match condition of one key cell.
    fn key_cond(
        &mut self,
        field: FieldId,
        width: u16,
        kind: MatchKind,
        m: &KeyMatch,
    ) -> Result<BExp, CompileError> {
        let f = AExp::Field(field);
        let cv = |v: u128| AExp::Const(Bv::new(width, v));
        Ok(match (kind, m) {
            (_, KeyMatch::Any) => BExp::True,
            (MatchKind::Exact, KeyMatch::Exact(v))
            | (MatchKind::Lpm, KeyMatch::Exact(v))
            | (MatchKind::Ternary, KeyMatch::Exact(v))
            | (MatchKind::Range, KeyMatch::Exact(v)) => BExp::eq(f, cv(*v)),
            (MatchKind::Lpm, KeyMatch::Prefix(v, len)) => {
                if *len > width {
                    return err(format!("prefix length {len} exceeds key width {width}"));
                }
                if *len == 0 {
                    BExp::True
                } else {
                    let mask = Bv::ones(width).shl((width - len) as u32);
                    BExp::eq(
                        AExp::bin(meissa_ir::AOp::And, f, AExp::Const(mask)),
                        AExp::Const(Bv::new(width, *v).and(&mask)),
                    )
                }
            }
            (MatchKind::Ternary, KeyMatch::Ternary(v, m)) => {
                let mask = Bv::new(width, *m);
                BExp::eq(
                    AExp::bin(meissa_ir::AOp::And, f, AExp::Const(mask)),
                    AExp::Const(Bv::new(width, *v).and(&mask)),
                )
            }
            (MatchKind::Range, KeyMatch::Range(lo, hi)) => {
                if lo > hi {
                    return err(format!("empty range {lo}..{hi}"));
                }
                BExp::and(
                    BExp::Cmp(CmpOp::Ge, f.clone(), cv(*lo)),
                    BExp::Cmp(CmpOp::Le, f, cv(*hi)),
                )
            }
            (kind, m) => {
                return err(format!(
                    "rule key {m:?} is incompatible with match kind {kind:?}"
                ))
            }
        })
    }

    /// Static overlap test between two key cells (conservative: `true` when
    /// unsure). Used to avoid emitting negated-priority constraints for
    /// provably-disjoint rules.
    fn keys_overlap(_kind: MatchKind, a: &KeyMatch, b: &KeyMatch, width: u16) -> bool {
        use KeyMatch::*;
        let full = |len: u16| -> u128 {
            if len == 0 {
                0
            } else {
                let ones = if width >= 128 {
                    u128::MAX
                } else {
                    (1u128 << width) - 1
                };
                ones << (width - len) & ones
            }
        };
        let (a, b) = match (a, b) {
            (Any, _) | (_, Any) => return true,
            (Prefix(v, l), x) => (Ternary(*v & full(*l), full(*l)), *x),
            (x, Prefix(v, l)) => (*x, Ternary(*v & full(*l), full(*l))),
            (x, y) => (*x, *y),
        };
        match (a, b) {
            (Exact(x), Exact(y)) => x == y,
            (Exact(x), Ternary(v, m)) | (Ternary(v, m), Exact(x)) => (x & m) == (v & m),
            (Ternary(v1, m1), Ternary(v2, m2)) => (v1 & m1 & m2) == (v2 & m1 & m2),
            (Range(lo, hi), Exact(x)) | (Exact(x), Range(lo, hi)) => lo <= x && x <= hi,
            (Range(l1, h1), Range(l2, h2)) => l1 <= h2 && l2 <= h1,
            // Range vs ternary: conservative.
            (Range(..), Ternary(..)) | (Ternary(..), Range(..)) => true,
            (Any, _) | (_, Any) | (Prefix(..), _) | (_, Prefix(..)) => true,
        }
    }

    fn rules_overlap(keys: &[(FieldId, u16, MatchKind)], a: &Rule, b: &Rule) -> bool {
        keys.iter()
            .zip(a.keys.iter().zip(&b.keys))
            .all(|(&(_, w, kind), (ka, kb))| Self::keys_overlap(kind, ka, kb, w))
    }

    /// Compiles a table application at the current frontier.
    fn compile_table(&mut self, name: &str) -> Result<(), CompileError> {
        let decl = match self.tables.get(name) {
            Some(d) => *d,
            None => return err(format!("unknown table `{name}`")),
        };
        let decl = decl.clone();
        let mut keys: Vec<(FieldId, u16, MatchKind)> = Vec::new();
        for (f, kind) in &decl.keys {
            let (id, w) = self.field_ref(f)?;
            keys.push((id, w, *kind));
        }
        let rules: Vec<Rule> = self.rules.rules_for(name).to_vec();
        for r in &rules {
            if r.keys.len() != keys.len() {
                return err(format!(
                    "rule for `{name}` has {} keys, table declares {}",
                    r.keys.len(),
                    keys.len()
                ));
            }
            if !decl.actions.contains(&r.action) {
                return err(format!(
                    "rule action `{}` not permitted by table `{name}`",
                    r.action
                ));
            }
        }

        // Match conditions per rule (with first-match-wins negations only
        // against overlapping higher-priority rules).
        let mut match_conds = Vec::with_capacity(rules.len());
        for r in &rules {
            let mut cond = BExp::True;
            for (&(fid, w, kind), km) in keys.iter().zip(&r.keys) {
                cond = BExp::and(cond, self.key_cond(fid, w, kind, km)?);
            }
            match_conds.push(cond);
        }

        let base = self.b.frontier();
        let mut arm_frontiers = Vec::new();

        for (i, r) in rules.iter().enumerate() {
            let mut cond = match_conds[i].clone();
            for j in 0..i {
                if Self::rules_overlap(&keys, r, &rules[j]) {
                    cond = BExp::and(cond, BExp::not(match_conds[j].clone()));
                }
            }
            self.b.set_frontier(base.clone());
            let arm = self
                .b
                .stmt_with_raw(Stmt::Assume(cond), match_conds[i].clone());
            self.b.mark_rule_site(arm, name, RuleArm::Rule(i as u32));
            for s in self.instantiate_action(&r.action, &r.args)? {
                self.b.stmt(s);
            }
            arm_frontiers.push(self.b.frontier());
        }

        // Default branch: no rule matched.
        let mut none = BExp::True;
        for mc in &match_conds {
            none = BExp::and(none, BExp::not(mc.clone()));
        }
        self.b.set_frontier(base);
        let miss = self.b.stmt_with_raw(Stmt::Assume(none.clone()), none);
        self.b.mark_rule_site(miss, name, RuleArm::Miss);
        if let Some((aname, args)) = &decl.default_action {
            for s in self.instantiate_action(aname, args)? {
                self.b.stmt(s);
            }
        }
        arm_frontiers.push(self.b.frontier());

        self.b.set_frontier(Vec::new());
        self.b.merge_frontiers(arm_frontiers);
        self.b.nop(); // join point
        Ok(())
    }

    // ----- control compilation ----------------------------------------------

    fn compile_ctrl_stmts(&mut self, stmts: &[CtrlStmt]) -> Result<(), CompileError> {
        for s in stmts {
            match s {
                CtrlStmt::Apply(t) => self.compile_table(t)?,
                CtrlStmt::Call(a, args) => {
                    for stmt in self.instantiate_action(a, args)? {
                        self.b.stmt(stmt);
                    }
                }
                CtrlStmt::If(cond, then, els) => {
                    let env = ParamEnv::new();
                    let c = self.compile_cond(cond, &env)?;
                    let base = self.b.frontier();

                    self.b.set_frontier(base.clone());
                    self.b.stmt(Stmt::Assume(c.clone()));
                    self.compile_ctrl_stmts(then)?;
                    let f_then = self.b.frontier();

                    self.b.set_frontier(base);
                    self.b.stmt(Stmt::Assume(BExp::not(c)));
                    self.compile_ctrl_stmts(els)?;
                    let f_els = self.b.frontier();

                    self.b.set_frontier(Vec::new());
                    self.b.merge_frontiers(vec![f_then, f_els]);
                    self.b.nop();
                }
            }
        }
        Ok(())
    }

    // ----- parser compilation ------------------------------------------------

    fn compile_parser(&mut self, name: &str) -> Result<(), CompileError> {
        let decl = match self.parsers.get(name) {
            Some(d) => *d,
            None => return err(format!("unknown parser `{name}`")),
        };
        let states: HashMap<String, ParserState> = decl
            .states
            .iter()
            .map(|s| (s.name.clone(), s.clone()))
            .collect();
        if !states.contains_key("start") {
            return err(format!("parser `{name}` has no start state"));
        }
        let mut accepts = Vec::new();
        let mut stack = HashSet::new();
        self.emit_state(&states, "start", &mut accepts, &mut stack)?;
        self.b.set_frontier(Vec::new());
        self.b.merge_frontiers(accepts);
        self.b.nop(); // parser accept join
        Ok(())
    }

    fn emit_state(
        &mut self,
        states: &HashMap<String, ParserState>,
        name: &str,
        accepts: &mut Vec<Vec<NodeId>>,
        stack: &mut HashSet<String>,
    ) -> Result<(), CompileError> {
        if name == "accept" {
            accepts.push(self.b.frontier());
            return Ok(());
        }
        if !stack.insert(name.to_string()) {
            return err(format!("parser state cycle through `{name}`"));
        }
        let state = match states.get(name) {
            Some(s) => s.clone(),
            None => return err(format!("unknown parser state `{name}`")),
        };
        for h in &state.extracts {
            let v = self.valid_field(h)?;
            self.b.stmt(Stmt::Assign(v, AExp::Const(Bv::new(1, 1))));
        }
        match &state.transition {
            Transition::Accept => accepts.push(self.b.frontier()),
            Transition::Goto(next) => self.emit_state(states, next, accepts, stack)?,
            Transition::Select {
                scrutinee,
                arms,
                default,
            } => {
                let env = ParamEnv::new();
                let (scrut, w) = self.compile_expr(scrutinee, &env, None)?;
                let pat_cond = |pat: &SelectPattern| -> BExp {
                    let f = scrut.clone();
                    match pat {
                        SelectPattern::Exact(v) => BExp::eq(f, AExp::Const(Bv::new(w, *v))),
                        SelectPattern::Mask(v, m) => {
                            let mask = Bv::new(w, *m);
                            BExp::eq(
                                AExp::bin(meissa_ir::AOp::And, f, AExp::Const(mask)),
                                AExp::Const(Bv::new(w, *v).and(&mask)),
                            )
                        }
                        SelectPattern::Range(lo, hi) => BExp::and(
                            BExp::Cmp(CmpOp::Ge, f.clone(), AExp::Const(Bv::new(w, *lo))),
                            BExp::Cmp(CmpOp::Le, f, AExp::Const(Bv::new(w, *hi))),
                        ),
                    }
                };
                let base = self.b.frontier();
                let conds: Vec<BExp> = arms.iter().map(|(p, _)| pat_cond(p)).collect();
                for (i, (_, target)) in arms.iter().enumerate() {
                    let mut cond = conds[i].clone();
                    for c in conds.iter().take(i) {
                        cond = BExp::and(cond, BExp::not(c.clone()));
                    }
                    self.b.set_frontier(base.clone());
                    self.b.stmt_with_raw(Stmt::Assume(cond), conds[i].clone());
                    self.emit_state(states, target, accepts, stack)?;
                }
                let mut none = BExp::True;
                for c in &conds {
                    none = BExp::and(none, BExp::not(c.clone()));
                }
                self.b.set_frontier(base);
                self.b.stmt_with_raw(Stmt::Assume(none.clone()), none);
                self.emit_state(states, default, accepts, stack)?;
                // Leave the frontier empty; every outcome was recorded either
                // in `accepts` or deeper in the recursion.
                self.b.set_frontier(Vec::new());
            }
        }
        stack.remove(name);
        Ok(())
    }

    // ----- topology ------------------------------------------------------------

    fn run(&mut self) -> Result<(), CompileError> {
        // Header layouts first, so every packet field is interned even if
        // unused by code (the driver serializes whole headers).
        for h in &self.prog.headers {
            let valid = self.b.fields_mut().intern(&format!("hdr.{}.$valid", h.name), 1);
            let mut fields = Vec::new();
            for (f, w) in &h.fields {
                let full = format!("hdr.{}.{}", h.name, f);
                let id = self.b.fields_mut().intern(&full, *w);
                fields.push((full, id, *w));
            }
            self.layouts.push(HeaderLayout {
                name: h.name.clone(),
                fields,
                valid,
            });
        }
        let mut zero_inits: Vec<(FieldId, u16)> = self
            .layouts
            .iter()
            .map(|l| (l.valid, 1))
            .collect();
        for m in &self.prog.metadatas {
            for (f, w) in &m.fields {
                let id = self.b.fields_mut().intern(&format!("{}.{}", m.name, f), *w);
                zero_inits.push((id, *w));
            }
        }
        // Target semantics: header validity and per-packet metadata start at
        // zero; only the parser (extract/setValid) and actions change them.
        // Register cells are NOT zeroed here: within one packet's CFG they
        // are free variables (§4's stateless model), and the k-packet
        // unroller (`meissa_ir::unroll`) decides their initial state —
        // zeroed or symbolic — when it threads them across copies. Register
        // writes therefore compile to ordinary assignments that become live
        // state transitions once a later copy reads the same cell.
        for (f, w) in zero_inits {
            self.b.stmt(Stmt::Assign(f, AExp::Const(Bv::zero(w))));
        }

        // Topology: validate and order pipelines.
        if self.prog.topology.is_empty() && self.prog.pipelines.len() == 1 {
            // Single-pipeline programs may omit the topology block.
            let name = self.prog.pipelines[0].name.clone();
            self.b.nop(); // program entry
            self.compile_pipeline(&name)?;
            self.b.nop(); // program exit
            return Ok(());
        }
        if self.prog.topology.is_empty() {
            return err("multi-pipeline programs must declare a topology");
        }

        let mut order: Vec<String> = Vec::new();
        let mut indeg: HashMap<&str, usize> = HashMap::new();
        let mut succs: HashMap<&str, Vec<&TopoEdge>> = HashMap::new();
        for e in &self.prog.topology {
            if e.from != "start" && !self.pipelines.contains_key(&e.from) {
                return err(format!("topology references unknown pipeline `{}`", e.from));
            }
            if e.to != "end" && !self.pipelines.contains_key(&e.to) {
                return err(format!("topology references unknown pipeline `{}`", e.to));
            }
            succs.entry(e.from.as_str()).or_default().push(e);
            if e.to != "end" {
                let d = indeg.entry(e.to.as_str()).or_insert(0);
                // Edges from `start` do not gate a pipeline: `start` is
                // always "already built" when the walk begins.
                if e.from != "start" {
                    *d += 1;
                }
            }
            if e.from != "start" {
                indeg.entry(e.from.as_str()).or_insert(0);
            }
        }
        let mut queue: Vec<&str> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        queue.sort();
        let mut queue: std::collections::VecDeque<&str> = queue.into();
        while let Some(n) = queue.pop_front() {
            order.push(n.to_string());
            for e in succs.get(n).map(Vec::as_slice).unwrap_or(&[]) {
                if e.to != "end" {
                    let d = indeg.get_mut(e.to.as_str()).unwrap();
                    *d -= 1;
                    if *d == 0 {
                        queue.push_back(e.to.as_str());
                    }
                }
            }
        }
        if order.len() != indeg.len() {
            return err("topology contains a cycle (unroll recirculation per §4)");
        }

        // Build: entry node, then pipelines in topological order, wiring
        // `when` predicates along edges.
        let start = self.b.nop(); // program entry ("start")
        self.b.set_frontier(Vec::new());

        // Endpoints of edges whose source is already built: target → nodes.
        let mut incoming: HashMap<String, Vec<NodeId>> = HashMap::new();
        let topo_edges = self.prog.topology.clone();
        let emit_edges_from = |c: &mut Self,
                                   from: &str,
                                   from_node: NodeId,
                                   incoming: &mut HashMap<String, Vec<NodeId>>|
         -> Result<(), CompileError> {
            for e in topo_edges.iter().filter(|e| e.from == from) {
                c.b.set_frontier(vec![from_node]);
                if let Some(when) = &e.when {
                    let env = ParamEnv::new();
                    let cond = c.compile_cond(when, &env)?;
                    c.b.stmt(Stmt::Assume(cond));
                }
                let endpoint = c.b.frontier();
                incoming.entry(e.to.clone()).or_default().extend(endpoint);
            }
            Ok(())
        };

        emit_edges_from(self, "start", start, &mut incoming)?;
        for name in &order {
            let inc = match incoming.remove(name) {
                Some(v) if !v.is_empty() => v,
                _ => return err(format!("pipeline `{name}` is unreachable from start")),
            };
            self.b.set_frontier(inc);
            let exit = self.compile_pipeline(name)?;
            self.b.set_frontier(Vec::new());
            emit_edges_from(self, name, exit, &mut incoming)?;
        }
        let end_nodes = incoming.remove("end").unwrap_or_default();
        if end_nodes.is_empty() {
            return err("no topology edge reaches `end`");
        }
        self.b.set_frontier(end_nodes);
        self.b.nop(); // program exit ("end")
        Ok(())
    }

    /// Compiles one pipeline body; returns its exit marker node.
    fn compile_pipeline(&mut self, name: &str) -> Result<NodeId, CompileError> {
        let decl = match self.pipelines.get(name) {
            Some(d) => (*d).clone(),
            None => return err(format!("unknown pipeline `{name}`")),
        };
        self.b.begin_pipeline(name);
        if let Some(p) = &decl.parser {
            self.compile_parser(p)?;
        }
        let control = match self.controls.get(&decl.control) {
            Some(c) => (*c).clone(),
            None => return err(format!("unknown control `{}`", decl.control)),
        };
        self.compile_ctrl_stmts(&control.body)?;
        let id = self.b.end_pipeline();
        // `end_pipeline` pushed the exit marker as the sole frontier node.
        let exit = self.b.frontier();
        debug_assert_eq!(exit.len(), 1);
        let _ = id;
        Ok(exit[0])
    }

    fn finish(mut self) -> Result<CompiledProgram, CompileError> {
        // Validate rules reference declared tables.
        for t in self.rules.table_names() {
            if !self.tables.contains_key(t) {
                return err(format!("rules installed for unknown table `{t}`"));
            }
        }
        // Intents.
        let env = ParamEnv::new();
        let mut intents = Vec::new();
        let prog_intents = self.prog.intents.clone();
        for i in &prog_intents {
            intents.push(CompiledIntent {
                name: i.name.clone(),
                given: self.compile_cond(&i.given, &env)?,
                expect: self.compile_cond(&i.expect, &env)?,
            });
        }
        // Deparse order.
        let deparse_order = if self.prog.deparser.is_empty() {
            self.prog.headers.iter().map(|h| h.name.clone()).collect()
        } else {
            for h in &self.prog.deparser {
                if !self.headers.contains_key(h) {
                    return err(format!("deparser emits unknown header `{h}`"));
                }
            }
            self.prog.deparser.clone()
        };
        let num_pipes = self.prog.pipelines.len();
        let num_switches = {
            let mut prefixes: HashSet<&str> = HashSet::new();
            for p in &self.prog.pipelines {
                if let Some(idx) = p.name.find('_') {
                    let prefix = &p.name[..idx];
                    if prefix.starts_with("sw") {
                        prefixes.insert(prefix);
                        continue;
                    }
                }
                prefixes.insert("");
            }
            prefixes.len().max(1)
        };
        let cfg = self.b.finish();
        debug_assert!(
            cfg.validate().is_empty(),
            "frontend produced an ill-formed CFG: {:?}",
            cfg.validate()
        );
        // Register layouts: declaration order, cells limited to the ones the
        // code interned (a cell nothing references is unobservable).
        let registers = self
            .prog
            .registers
            .iter()
            .map(|r| RegisterLayout {
                name: r.name.clone(),
                size: r.size,
                width: r.width,
                cells: (0..r.size)
                    .filter_map(|i| {
                        cfg.fields
                            .get(&format!("REG:{}-POS:{i}", r.name))
                            .map(|f| (i, f))
                    })
                    .collect(),
            })
            .collect();
        Ok(CompiledProgram {
            source: self.prog.clone(),
            cfg,
            headers: self.layouts,
            deparse_order,
            intents,
            registers,
            loc: self.prog.loc,
            rules_loc: self.rules.loc,
            num_pipes,
            num_switches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::rules::parse_rules;
    use meissa_ir::{count_paths, enumerate_paths, eval_path, ConcreteState};
    use meissa_num::BigUint;

    const ROUTER: &str = r#"
        header ethernet { dst: 48; src: 48; ether_type: 16; }
        header ipv4 { ttl: 8; protocol: 8; dst_addr: 32; }
        metadata meta { egress_port: 9; drop: 1; }
        parser main {
          state start {
            extract(ethernet);
            select (hdr.ethernet.ether_type) { 0x0800 => parse_ipv4; default => accept; }
          }
          state parse_ipv4 { extract(ipv4); accept; }
        }
        action set_port(port: 9) { meta.egress_port = port; }
        action drop_() { meta.drop = 1; }
        table route {
          key = { hdr.ipv4.dst_addr: lpm; }
          actions = { set_port; drop_; }
          default_action = drop_();
        }
        control ig {
          if (hdr.ipv4.isValid()) { apply(route); }
        }
        pipeline ingress0 { parser = main; control = ig; }
    "#;

    const ROUTER_RULES: &str = r#"
        rules route {
          10.0.0.0/8 => set_port(1);
          192.168.0.0/16 => set_port(2);
        }
    "#;

    fn build(src: &str, rules: &str) -> CompiledProgram {
        let p = parse_program(src).unwrap();
        let r = parse_rules(rules).unwrap();
        compile(&p, &r).unwrap()
    }

    #[test]
    fn router_compiles() {
        let cp = build(ROUTER, ROUTER_RULES);
        assert_eq!(cp.num_pipes, 1);
        assert_eq!(cp.num_switches, 1);
        assert_eq!(cp.headers.len(), 2);
        assert!(cp.cfg.fields.get("hdr.ipv4.dst_addr").is_some());
        assert!(cp.cfg.fields.get("hdr.ipv4.$valid").is_some());
        assert!(cp.cfg.fields.get("meta.egress_port").is_some());
    }

    #[test]
    fn router_path_structure() {
        let cp = build(ROUTER, ROUTER_RULES);
        // Paths: non-ipv4 (1) + ipv4 × {rule1, rule2, default} (3), but the
        // non-ipv4 parser branch still passes the control's if with either
        // outcome... isValid is false on that branch, so control contributes
        // its else arm only after symbolic pruning. *Possible* paths count
        // both control arms for both parser branches: 2 × (3 + 1) = 8.
        let n = count_paths(&cp.cfg);
        assert_eq!(n.total, BigUint::from_u64(8));
    }

    #[test]
    fn router_concrete_execution() {
        let cp = build(ROUTER, ROUTER_RULES);
        let fields = &cp.cfg.fields;
        let et = fields.get("hdr.ethernet.ether_type").unwrap();
        let dst = fields.get("hdr.ipv4.dst_addr").unwrap();
        let port = fields.get("meta.egress_port").unwrap();
        // Find the path a 10.x packet takes by trying all possible paths.
        let init = ConcreteState::from_pairs([
            (et, Bv::new(16, 0x0800)),
            (dst, Bv::new(32, 0x0a01_0203)),
        ]);
        let mut matched = 0;
        for path in enumerate_paths(&cp.cfg, 100) {
            if let Ok(out) = eval_path(&cp.cfg, &path, &init) {
                matched += 1;
                assert_eq!(out.get(fields, port), Bv::new(9, 1), "10/8 → port 1");
            }
        }
        assert_eq!(matched, 1, "exactly one valid path per concrete packet");
    }

    #[test]
    fn default_action_runs_when_no_rule_matches() {
        let cp = build(ROUTER, ROUTER_RULES);
        let fields = &cp.cfg.fields;
        let et = fields.get("hdr.ethernet.ether_type").unwrap();
        let dst = fields.get("hdr.ipv4.dst_addr").unwrap();
        let dropf = fields.get("meta.drop").unwrap();
        let init = ConcreteState::from_pairs([
            (et, Bv::new(16, 0x0800)),
            (dst, Bv::new(32, 0x0808_0808)), // matches no rule
        ]);
        let outs: Vec<_> = enumerate_paths(&cp.cfg, 100)
            .into_iter()
            .filter_map(|p| eval_path(&cp.cfg, &p, &init).ok())
            .collect();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].get(fields, dropf), Bv::new(1, 1));
    }

    #[test]
    fn non_ip_packet_skips_table() {
        let cp = build(ROUTER, ROUTER_RULES);
        let fields = &cp.cfg.fields;
        let et = fields.get("hdr.ethernet.ether_type").unwrap();
        let valid = fields.get("hdr.ipv4.$valid").unwrap();
        let init = ConcreteState::from_pairs([(et, Bv::new(16, 0x0806))]); // ARP
        let outs: Vec<_> = enumerate_paths(&cp.cfg, 100)
            .into_iter()
            .filter_map(|p| eval_path(&cp.cfg, &p, &init).ok())
            .collect();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].get(fields, valid), Bv::new(1, 0));
    }

    #[test]
    fn multi_pipeline_topology() {
        let src = r#"
            header h { t: 8; }
            metadata meta { port: 9; x: 8; }
            parser p { state start { extract(h); accept; } }
            action a1() { meta.x = 1; }
            action a2() { meta.x = 2; }
            control c1 { call a1(); }
            control c2 { call a2(); }
            pipeline sw0_ig { parser = p; control = c1; }
            pipeline sw0_eg { control = c2; }
            topology {
              start -> sw0_ig;
              sw0_ig -> sw0_eg;
              sw0_eg -> end;
            }
        "#;
        let cp = build(src, "");
        assert_eq!(cp.num_pipes, 2);
        assert_eq!(cp.cfg.pipelines().len(), 2);
        let order = cp.cfg.pipeline_topo_order();
        assert_eq!(cp.cfg.pipeline(order[0]).name, "sw0_ig");
        assert_eq!(cp.cfg.pipeline(order[1]).name, "sw0_eg");
    }

    #[test]
    fn topology_when_predicates_become_nodes() {
        let src = r#"
            header h { t: 8; }
            metadata meta { port: 9; }
            parser p { state start { extract(h); accept; } }
            action setp(v: 9) { meta.port = v; }
            control c0 { call setp(1); }
            control c1 { }
            control c2 { }
            pipeline ig { parser = p; control = c0; }
            pipeline eg0 { control = c1; }
            pipeline eg1 { control = c2; }
            topology {
              start -> ig;
              ig -> eg0 when (meta.port == 0);
              ig -> eg1 when (meta.port != 0);
              eg0 -> end;
              eg1 -> end;
            }
        "#;
        let cp = build(src, "");
        // Paths: ig → {eg0, eg1} = 2 possible paths.
        assert_eq!(count_paths(&cp.cfg).total, BigUint::from_u64(2));
        // Concretely, port==1 forces eg1.
        let fields = &cp.cfg.fields;
        let port = fields.get("meta.port").unwrap();
        let valid: Vec<_> = enumerate_paths(&cp.cfg, 10)
            .into_iter()
            .filter(|p| eval_path(&cp.cfg, p, &ConcreteState::new()).is_ok())
            .collect();
        assert_eq!(valid.len(), 1);
        let out = eval_path(&cp.cfg, &valid[0], &ConcreteState::new()).unwrap();
        assert_eq!(out.get(fields, port), Bv::new(9, 1));
    }

    #[test]
    fn multi_switch_counting() {
        let src = r#"
            metadata meta { x: 8; }
            control c { }
            pipeline sw0_ig { control = c; }
            pipeline sw1_ig { control = c; }
            topology { start -> sw0_ig; sw0_ig -> sw1_ig; sw1_ig -> end; }
        "#;
        let cp = build(src, "");
        assert_eq!(cp.num_switches, 2);
    }

    #[test]
    fn register_cells_are_fields() {
        let src = r#"
            register counters[8]: 32;
            metadata meta { x: 32; }
            action bump() { counters[3] = counters[3] + 1; meta.x = counters[0]; }
            control c { call bump(); }
            pipeline p { control = c; }
        "#;
        let cp = build(src, "");
        assert!(cp.cfg.fields.get("REG:counters-POS:3").is_some());
        assert!(cp.cfg.fields.get("REG:counters-POS:0").is_some());
        // Layout metadata: declared shape plus the referenced cells only.
        assert_eq!(cp.registers.len(), 1);
        let layout = &cp.registers[0];
        assert_eq!(layout.name, "counters");
        assert_eq!(layout.size, 8);
        assert_eq!(layout.width, 32);
        let idxs: Vec<u32> = layout.cells.iter().map(|(i, _)| *i).collect();
        assert_eq!(idxs, vec![0, 3], "only cells the code touches");
        for &(i, f) in &layout.cells {
            assert_eq!(
                cp.cfg.fields.get(&format!("REG:counters-POS:{i}")),
                Some(f)
            );
        }
    }

    #[test]
    fn register_out_of_bounds_rejected() {
        let src = r#"
            register r[4]: 8;
            metadata meta { x: 8; }
            action bad() { meta.x = r[9]; }
            control c { call bad(); }
            pipeline p { control = c; }
        "#;
        let p = parse_program(src).unwrap();
        let e = compile(&p, &RuleSet::new()).unwrap_err();
        assert!(e.message.contains("out of bounds"), "{e}");
    }

    #[test]
    fn setvalid_assigns_validity() {
        let src = r#"
            header vxlan { vni: 24; }
            metadata meta { x: 8; }
            action encap() { hdr.vxlan.setValid(); hdr.vxlan.vni = 42; }
            control c { call encap(); }
            pipeline p { control = c; }
        "#;
        let cp = build(src, "");
        let fields = &cp.cfg.fields;
        let valid = fields.get("hdr.vxlan.$valid").unwrap();
        let vni = fields.get("hdr.vxlan.vni").unwrap();
        let paths = enumerate_paths(&cp.cfg, 10);
        let out = eval_path(&cp.cfg, &paths[0], &ConcreteState::new()).unwrap();
        assert_eq!(out.get(fields, valid), Bv::new(1, 1));
        assert_eq!(out.get(fields, vni), Bv::new(24, 42));
    }

    #[test]
    fn ternary_and_range_rules() {
        let src = r#"
            header pkt { t: 16; p: 16; }
            metadata meta { class: 8; }
            parser pr { state start { extract(pkt); accept; } }
            action cls(c: 8) { meta.class = c; }
            action none() { }
            table acl {
              key = { hdr.pkt.t: ternary; hdr.pkt.p: range; }
              actions = { cls; none; }
              default_action = none();
            }
            control c { apply(acl); }
            pipeline p { parser = pr; control = c; }
        "#;
        let rules = r#"
            rules acl {
              0x0800 &&& 0xffff, 80..443 => cls(1);
              _, _ => cls(2);
            }
        "#;
        let cp = build(src, rules);
        let fields = &cp.cfg.fields;
        let t = fields.get("hdr.pkt.t").unwrap();
        let p = fields.get("hdr.pkt.p").unwrap();
        let class = fields.get("meta.class").unwrap();
        let run = |tv: u128, pv: u128| -> Bv {
            let init =
                ConcreteState::from_pairs([(t, Bv::new(16, tv)), (p, Bv::new(16, pv))]);
            let outs: Vec<_> = enumerate_paths(&cp.cfg, 100)
                .into_iter()
                .filter_map(|path| eval_path(&cp.cfg, &path, &init).ok())
                .collect();
            assert_eq!(outs.len(), 1, "t={tv} p={pv}");
            outs[0].get(fields, class)
        };
        assert_eq!(run(0x0800, 100), Bv::new(8, 1));
        assert_eq!(run(0x0800, 500), Bv::new(8, 2), "port out of range");
        assert_eq!(run(0x0806, 100), Bv::new(8, 2), "type mismatch");
    }

    #[test]
    fn overlapping_rules_first_match_wins() {
        let src = r#"
            header pkt { a: 8; }
            metadata meta { r: 8; }
            parser pr { state start { extract(pkt); accept; } }
            action set(v: 8) { meta.r = v; }
            table t {
              key = { hdr.pkt.a: ternary; }
              actions = { set; }
            }
            control c { apply(t); }
            pipeline p { parser = pr; control = c; }
        "#;
        // Rule 1 shadows part of rule 2's space.
        let rules = r#"
            rules t {
              0x10 &&& 0xf0 => set(1);
              _ => set(2);
            }
        "#;
        let cp = build(src, rules);
        let fields = &cp.cfg.fields;
        let a = fields.get("hdr.pkt.a").unwrap();
        let r = fields.get("meta.r").unwrap();
        let run = |av: u128| -> Vec<Bv> {
            let init = ConcreteState::from_pairs([(a, Bv::new(8, av))]);
            enumerate_paths(&cp.cfg, 100)
                .into_iter()
                .filter_map(|path| eval_path(&cp.cfg, &path, &init).ok())
                .map(|o| o.get(fields, r))
                .collect()
        };
        assert_eq!(run(0x15), vec![Bv::new(8, 1)], "high-priority rule wins");
        assert_eq!(run(0x25), vec![Bv::new(8, 2)]);
    }

    #[test]
    fn errors_are_informative() {
        let cases: Vec<(&str, &str)> = vec![
            (
                "metadata meta { x: 8; } control c { apply(nope); } pipeline p { control = c; }",
                "unknown table",
            ),
            (
                "metadata meta { x: 8; } control c { call nope(); } pipeline p { control = c; }",
                "unknown action",
            ),
            (
                "metadata meta { x: 8; } action a() { meta.y = 1; } control c { call a(); } pipeline p { control = c; }",
                "no field",
            ),
            (
                "metadata meta { x: 8; } action a(v: 8) { meta.x = v; } control c { call a(); } pipeline p { control = c; }",
                "expects 1 args",
            ),
            (
                "metadata meta { x: 8; } control c { } pipeline p { control = c; } pipeline q { control = c; } topology { start -> p; p -> q; }",
                "no topology edge reaches",
            ),
        ];
        for (src, want) in cases {
            let p = parse_program(src).unwrap();
            let e = compile(&p, &RuleSet::new()).unwrap_err();
            assert!(
                e.message.contains(want),
                "expected `{want}` in `{}`",
                e.message
            );
        }
    }

    #[test]
    fn literal_overflow_rejected() {
        let src = r#"
            metadata meta { x: 4; }
            action a() { meta.x = 99; }
            control c { call a(); }
            pipeline p { control = c; }
        "#;
        let p = parse_program(src).unwrap();
        let e = compile(&p, &RuleSet::new()).unwrap_err();
        assert!(e.message.contains("does not fit"), "{e}");
    }

    #[test]
    fn intents_compile_to_ir() {
        let src = r#"
            header h { t: 16; }
            metadata meta { drop: 1; }
            parser pr { state start { extract(h); accept; } }
            control c { }
            pipeline p { parser = pr; control = c; }
            intent sanity { given hdr.h.t == 0x0800; expect meta.drop == 0; }
        "#;
        let cp = build(src, "");
        assert_eq!(cp.intents.len(), 1);
        assert_eq!(cp.intents[0].name, "sanity");
        assert!(matches!(cp.intents[0].given, BExp::Cmp(CmpOp::Eq, _, _)));
    }

    #[test]
    fn parse_select_mask_ranges_end_to_end() {
        let src = r#"
            header eth { t: 16; }
            header vlan { tag: 16; }
            metadata meta { x: 8; }
            parser pr {
              state start {
                extract(eth);
                select (hdr.eth.t) {
                  0x8100 &&& 0xff00 => parse_vlan;
                  default => accept;
                }
              }
              state parse_vlan { extract(vlan); accept; }
            }
            control c { }
            pipeline p { parser = pr; control = c; }
        "#;
        let cp = build(src, "");
        let fields = &cp.cfg.fields;
        let t = fields.get("hdr.eth.t").unwrap();
        let vv = fields.get("hdr.vlan.$valid").unwrap();
        let init = ConcreteState::from_pairs([(t, Bv::new(16, 0x8135))]);
        let outs: Vec<_> = enumerate_paths(&cp.cfg, 10)
            .into_iter()
            .filter_map(|p| eval_path(&cp.cfg, &p, &init).ok())
            .collect();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].get(fields, vv), Bv::new(1, 1), "masked select hit");
    }
}
