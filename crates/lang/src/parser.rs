//! Recursive-descent parser for P4lite programs.
//!
//! Grammar sketch (see `README.md` for a tutorial):
//!
//! ```text
//! program   := item*
//! item      := header | metadata | register | parser | action | table
//!            | control | pipeline | topology | deparser | intent
//! header    := "header" IDENT "{" (IDENT ":" NUM ";")* "}"
//! metadata  := "metadata" IDENT "{" (IDENT ":" NUM ";")* "}"
//! register  := "register" IDENT "[" NUM "]" ":" NUM ";"
//! parser    := "parser" IDENT "{" state* "}"
//! state     := "state" IDENT "{" ("extract" "(" IDENT ")" ";")* trans "}"
//! trans     := "accept" ";" | "goto" IDENT ";"
//!            | "select" "(" expr ")" "{" (pat "=>" IDENT ";")* "default" "=>" IDENT ";" "}"
//! pat       := NUM | NUM "&&&" NUM | NUM ".." NUM
//! action    := "action" IDENT "(" (IDENT ":" NUM),* ")" "{" astmt* "}"
//! astmt     := lvalue "=" expr ";" | IDENT "." "setValid" "(" ")" ";" | …setInvalid…
//! table     := "table" IDENT "{" "key" "=" "{" (field ":" kind ";")* "}" ";"?
//!              "actions" "=" "{" (IDENT ";")* "}" ";"?
//!              ["default_action" "=" IDENT "(" args ")" ";"] ["size" "=" NUM ";"] "}"
//! control   := "control" IDENT "{" cstmt* "}"
//! cstmt     := "apply" "(" IDENT ")" ";" | "call" IDENT "(" args ")" ";"
//!            | "if" "(" cond ")" "{" cstmt* "}" ["else" ("{" cstmt* "}" | if…)]
//! pipeline  := "pipeline" IDENT "{" ["parser" "=" IDENT ";"] "control" "=" IDENT ";" "}"
//! topology  := "topology" "{" (IDENT "->" IDENT ["when" "(" cond ")"] ";")* "}"
//! deparser  := "deparser" "{" ("emit" "(" IDENT ")" ";")* "}"
//! intent    := "intent" IDENT "{" "given" cond ";" "expect" cond ";" "}"
//! ```
//!
//! Expression precedence (loosest→tightest): `||`, `&&`, comparison,
//! `|`, `^`, `&`, shifts, `+ -`, unary `~ !`.

use crate::ast::*;
use crate::lexer::{lex, LexError, Tok, Token};
use meissa_ir::{AOp, CmpOp, HashAlg};
use std::fmt;

/// A parse (or lex) failure with a source line.
#[derive(Clone, Debug)]
pub struct ParseError {
    /// Explanation.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Parses a whole P4lite program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut prog = p.program()?;
    prog.loc = crate::count_loc(src);
    Ok(prog)
}

pub(crate) struct Parser {
    pub(crate) tokens: Vec<Token>,
    pub(crate) pos: usize,
}

impl Parser {
    pub(crate) fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    pub(crate) fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    pub(crate) fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            line: self.line(),
        })
    }

    pub(crate) fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {tok}, found {}", self.peek()))
        }
    }

    pub(crate) fn eat(&mut self, tok: Tok) -> bool {
        if *self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    pub(crate) fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    pub(crate) fn num(&mut self) -> Result<u128, ParseError> {
        match *self.peek() {
            Tok::Num(n) => {
                self.bump();
                Ok(n)
            }
            ref other => self.err(format!("expected number, found {other}")),
        }
    }

    /// Parses `a` or `a.b.c…` into a dotted name.
    pub(crate) fn dotted(&mut self) -> Result<String, ParseError> {
        let mut s = self.ident()?;
        while self.eat(Tok::Dot) {
            s.push('.');
            s.push_str(&self.ident()?);
        }
        Ok(s)
    }

    fn kw(&mut self, word: &str) -> Result<(), ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) if s == word => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{word}`, found {other}")),
        }
    }

    fn at_kw(&self, word: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == word)
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        loop {
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Ident(kw) => match kw.as_str() {
                    "header" => {
                        self.bump();
                        let name = self.ident()?;
                        let fields = self.field_block()?;
                        prog.headers.push(HeaderDecl { name, fields });
                    }
                    "metadata" => {
                        self.bump();
                        let name = self.ident()?;
                        let fields = self.field_block()?;
                        prog.metadatas.push(MetadataDecl { name, fields });
                    }
                    "register" => {
                        self.bump();
                        let name = self.ident()?;
                        self.expect(Tok::LBracket)?;
                        let size = self.num()? as u32;
                        self.expect(Tok::RBracket)?;
                        self.expect(Tok::Colon)?;
                        let width = self.num()? as u16;
                        self.expect(Tok::Semi)?;
                        prog.registers.push(RegisterDecl { name, size, width });
                    }
                    "parser" => {
                        self.bump();
                        let decl = self.parser_decl()?;
                        prog.parsers.push(decl);
                    }
                    "action" => {
                        self.bump();
                        let decl = self.action_decl()?;
                        prog.actions.push(decl);
                    }
                    "table" => {
                        self.bump();
                        let decl = self.table_decl()?;
                        prog.tables.push(decl);
                    }
                    "control" => {
                        self.bump();
                        let name = self.ident()?;
                        self.expect(Tok::LBrace)?;
                        let body = self.ctrl_stmts()?;
                        self.expect(Tok::RBrace)?;
                        prog.controls.push(ControlDecl { name, body });
                    }
                    "pipeline" => {
                        self.bump();
                        let decl = self.pipeline_decl()?;
                        prog.pipelines.push(decl);
                    }
                    "topology" => {
                        self.bump();
                        self.expect(Tok::LBrace)?;
                        while !self.eat(Tok::RBrace) {
                            let from = self.ident()?;
                            self.expect(Tok::Arrow)?;
                            let to = self.ident()?;
                            let when = if self.at_kw("when") {
                                self.bump();
                                self.expect(Tok::LParen)?;
                                let c = self.cond()?;
                                self.expect(Tok::RParen)?;
                                Some(c)
                            } else {
                                None
                            };
                            self.expect(Tok::Semi)?;
                            prog.topology.push(TopoEdge { from, to, when });
                        }
                    }
                    "deparser" => {
                        self.bump();
                        self.expect(Tok::LBrace)?;
                        while !self.eat(Tok::RBrace) {
                            self.kw("emit")?;
                            self.expect(Tok::LParen)?;
                            let h = self.ident()?;
                            self.expect(Tok::RParen)?;
                            self.expect(Tok::Semi)?;
                            prog.deparser.push(h);
                        }
                    }
                    "intent" => {
                        self.bump();
                        let name = self.ident()?;
                        self.expect(Tok::LBrace)?;
                        self.kw("given")?;
                        let given = self.cond()?;
                        self.expect(Tok::Semi)?;
                        self.kw("expect")?;
                        let expect = self.cond()?;
                        self.expect(Tok::Semi)?;
                        self.expect(Tok::RBrace)?;
                        prog.intents.push(IntentDecl {
                            name,
                            given,
                            expect,
                        });
                    }
                    other => return self.err(format!("unknown top-level item `{other}`")),
                },
                other => return self.err(format!("expected top-level item, found {other}")),
            }
        }
        Ok(prog)
    }

    /// `{ name: width; … }`
    fn field_block(&mut self) -> Result<Vec<(String, u16)>, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(Tok::RBrace) {
            let name = self.ident()?;
            self.expect(Tok::Colon)?;
            let w = self.num()?;
            if w == 0 || w > 128 {
                return self.err(format!("field width {w} out of range 1..=128"));
            }
            self.expect(Tok::Semi)?;
            fields.push((name, w as u16));
        }
        Ok(fields)
    }

    fn parser_decl(&mut self) -> Result<ParserDecl, ParseError> {
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut states = Vec::new();
        while !self.eat(Tok::RBrace) {
            self.kw("state")?;
            let sname = self.ident()?;
            self.expect(Tok::LBrace)?;
            let mut extracts = Vec::new();
            while self.at_kw("extract") {
                self.bump();
                self.expect(Tok::LParen)?;
                extracts.push(self.ident()?);
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
            }
            let transition = if self.at_kw("accept") {
                self.bump();
                self.expect(Tok::Semi)?;
                Transition::Accept
            } else if self.at_kw("goto") {
                self.bump();
                let target = self.ident()?;
                self.expect(Tok::Semi)?;
                Transition::Goto(target)
            } else if self.at_kw("select") {
                self.bump();
                self.expect(Tok::LParen)?;
                let scrutinee = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::LBrace)?;
                let mut arms = Vec::new();
                let mut default = None;
                while !self.eat(Tok::RBrace) {
                    if self.at_kw("default") {
                        self.bump();
                        self.expect(Tok::FatArrow)?;
                        default = Some(self.ident()?);
                        self.expect(Tok::Semi)?;
                    } else {
                        let v = self.num()?;
                        let pat = if self.eat(Tok::TernaryMask) {
                            SelectPattern::Mask(v, self.num()?)
                        } else if self.eat(Tok::DotDot) {
                            SelectPattern::Range(v, self.num()?)
                        } else {
                            SelectPattern::Exact(v)
                        };
                        self.expect(Tok::FatArrow)?;
                        let target = self.ident()?;
                        self.expect(Tok::Semi)?;
                        arms.push((pat, target));
                    }
                }
                let default = match default {
                    Some(d) => d,
                    None => return self.err("select must have a default arm"),
                };
                Transition::Select {
                    scrutinee,
                    arms,
                    default,
                }
            } else {
                return self.err("expected accept/goto/select transition");
            };
            self.expect(Tok::RBrace)?;
            states.push(ParserState {
                name: sname,
                extracts,
                transition,
            });
        }
        Ok(ParserDecl { name, states })
    }

    fn action_decl(&mut self) -> Result<ActionDecl, ParseError> {
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(Tok::RParen) {
            loop {
                let pname = self.ident()?;
                self.expect(Tok::Colon)?;
                let w = self.num()? as u16;
                params.push((pname, w));
                if !self.eat(Tok::Comma) {
                    self.expect(Tok::RParen)?;
                    break;
                }
            }
        }
        self.expect(Tok::LBrace)?;
        let mut body = Vec::new();
        while !self.eat(Tok::RBrace) {
            body.push(self.action_stmt()?);
        }
        Ok(ActionDecl { name, params, body })
    }

    fn action_stmt(&mut self) -> Result<ActionStmt, ParseError> {
        // Lookahead for `name(.name)*.setValid()` / `.setInvalid()`.
        let start = self.pos;
        let first = self.dotted()?;
        if let Some(rest) = first.strip_suffix(".setValid") {
            self.expect(Tok::LParen)?;
            self.expect(Tok::RParen)?;
            self.expect(Tok::Semi)?;
            return Ok(ActionStmt::SetValid(strip_hdr(rest).to_string()));
        }
        if let Some(rest) = first.strip_suffix(".setInvalid") {
            self.expect(Tok::LParen)?;
            self.expect(Tok::RParen)?;
            self.expect(Tok::Semi)?;
            return Ok(ActionStmt::SetInvalid(strip_hdr(rest).to_string()));
        }
        // Otherwise an assignment; re-parse the lvalue properly.
        self.pos = start;
        let lv = self.lvalue()?;
        self.expect(Tok::Eq)?;
        let rhs = self.expr()?;
        self.expect(Tok::Semi)?;
        Ok(ActionStmt::Assign(lv, rhs))
    }

    fn lvalue(&mut self) -> Result<LValue, ParseError> {
        let name = self.ident()?;
        if *self.peek() == Tok::LBracket {
            self.bump();
            let idx = self.num()? as u32;
            self.expect(Tok::RBracket)?;
            return Ok(LValue::Register(name, idx));
        }
        let mut full = name;
        while self.eat(Tok::Dot) {
            full.push('.');
            full.push_str(&self.ident()?);
        }
        Ok(LValue::Field(full))
    }

    fn table_decl(&mut self) -> Result<TableDecl, ParseError> {
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut keys = Vec::new();
        let mut actions = Vec::new();
        let mut default_action = None;
        let mut size = 1024u32;
        while !self.eat(Tok::RBrace) {
            if self.at_kw("key") {
                self.bump();
                self.expect(Tok::Eq)?;
                self.expect(Tok::LBrace)?;
                while !self.eat(Tok::RBrace) {
                    let field = self.dotted()?;
                    self.expect(Tok::Colon)?;
                    let kind = match self.ident()?.as_str() {
                        "exact" => MatchKind::Exact,
                        "lpm" => MatchKind::Lpm,
                        "ternary" => MatchKind::Ternary,
                        "range" => MatchKind::Range,
                        other => return self.err(format!("unknown match kind `{other}`")),
                    };
                    self.expect(Tok::Semi)?;
                    keys.push((field, kind));
                }
                self.eat(Tok::Semi);
            } else if self.at_kw("actions") {
                self.bump();
                self.expect(Tok::Eq)?;
                self.expect(Tok::LBrace)?;
                while !self.eat(Tok::RBrace) {
                    actions.push(self.ident()?);
                    self.expect(Tok::Semi)?;
                }
                self.eat(Tok::Semi);
            } else if self.at_kw("default_action") {
                self.bump();
                self.expect(Tok::Eq)?;
                let aname = self.ident()?;
                let args = self.const_args()?;
                self.expect(Tok::Semi)?;
                default_action = Some((aname, args));
            } else if self.at_kw("size") {
                self.bump();
                self.expect(Tok::Eq)?;
                size = self.num()? as u32;
                self.expect(Tok::Semi)?;
            } else {
                return self.err(format!("unexpected token in table: {}", self.peek()));
            }
        }
        Ok(TableDecl {
            name,
            keys,
            actions,
            default_action,
            size,
        })
    }

    /// `( n, n, … )` — constant argument list.
    fn const_args(&mut self) -> Result<Vec<u128>, ParseError> {
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        if !self.eat(Tok::RParen) {
            loop {
                args.push(self.num()?);
                if !self.eat(Tok::Comma) {
                    self.expect(Tok::RParen)?;
                    break;
                }
            }
        }
        Ok(args)
    }

    fn ctrl_stmts(&mut self) -> Result<Vec<CtrlStmt>, ParseError> {
        let mut out = Vec::new();
        while *self.peek() != Tok::RBrace && *self.peek() != Tok::Eof {
            out.push(self.ctrl_stmt()?);
        }
        Ok(out)
    }

    fn ctrl_stmt(&mut self) -> Result<CtrlStmt, ParseError> {
        if self.at_kw("apply") {
            self.bump();
            self.expect(Tok::LParen)?;
            let t = self.ident()?;
            self.expect(Tok::RParen)?;
            self.expect(Tok::Semi)?;
            Ok(CtrlStmt::Apply(t))
        } else if self.at_kw("call") {
            self.bump();
            let a = self.ident()?;
            let args = self.const_args()?;
            self.expect(Tok::Semi)?;
            Ok(CtrlStmt::Call(a, args))
        } else if self.at_kw("if") {
            self.bump();
            self.expect(Tok::LParen)?;
            let cond = self.cond()?;
            self.expect(Tok::RParen)?;
            self.expect(Tok::LBrace)?;
            let then = self.ctrl_stmts()?;
            self.expect(Tok::RBrace)?;
            let els = if self.at_kw("else") {
                self.bump();
                if self.at_kw("if") {
                    vec![self.ctrl_stmt()?]
                } else {
                    self.expect(Tok::LBrace)?;
                    let e = self.ctrl_stmts()?;
                    self.expect(Tok::RBrace)?;
                    e
                }
            } else {
                Vec::new()
            };
            Ok(CtrlStmt::If(cond, then, els))
        } else {
            self.err(format!("expected control statement, found {}", self.peek()))
        }
    }

    fn pipeline_decl(&mut self) -> Result<PipelineDecl, ParseError> {
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut parser = None;
        let mut control = None;
        while !self.eat(Tok::RBrace) {
            if self.at_kw("parser") {
                self.bump();
                self.expect(Tok::Eq)?;
                parser = Some(self.ident()?);
                self.expect(Tok::Semi)?;
            } else if self.at_kw("control") {
                self.bump();
                self.expect(Tok::Eq)?;
                control = Some(self.ident()?);
                self.expect(Tok::Semi)?;
            } else {
                return self.err(format!("unexpected token in pipeline: {}", self.peek()));
            }
        }
        let control = match control {
            Some(c) => c,
            None => return self.err(format!("pipeline {name} missing control")),
        };
        Ok(PipelineDecl {
            name,
            parser,
            control,
        })
    }

    // ----- conditions ------------------------------------------------------

    /// `cond := or_cond`
    pub(crate) fn cond(&mut self) -> Result<Cond, ParseError> {
        self.or_cond()
    }

    fn or_cond(&mut self) -> Result<Cond, ParseError> {
        let mut lhs = self.and_cond()?;
        while self.eat(Tok::OrOr) {
            let rhs = self.and_cond()?;
            lhs = Cond::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_cond(&mut self) -> Result<Cond, ParseError> {
        let mut lhs = self.atom_cond()?;
        while self.eat(Tok::AndAnd) {
            let rhs = self.atom_cond()?;
            lhs = Cond::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn atom_cond(&mut self) -> Result<Cond, ParseError> {
        if self.eat(Tok::Bang) {
            let inner = self.atom_cond()?;
            return Ok(Cond::Not(Box::new(inner)));
        }
        if self.at_kw("true") {
            self.bump();
            return Ok(Cond::Bool(true));
        }
        if self.at_kw("false") {
            self.bump();
            return Ok(Cond::Bool(false));
        }
        if *self.peek() == Tok::LParen {
            // Could be a parenthesized condition OR a parenthesized
            // arithmetic expression starting a comparison. Try condition
            // first by scanning; simplest robust approach: parse as
            // condition, and if the next token is a comparison operator the
            // parenthesized thing was arithmetic — re-parse.
            let save = self.pos;
            self.bump();
            if let Ok(c) = self.cond() {
                if self.eat(Tok::RParen) && !self.peek_is_cmp() {
                    return Ok(c);
                }
            }
            self.pos = save;
        }
        // Comparison or isValid.
        let save = self.pos;
        if let Tok::Ident(_) = self.peek() {
            let name = self.dotted()?;
            if let Some(h) = name.strip_suffix(".isValid") {
                self.expect(Tok::LParen)?;
                self.expect(Tok::RParen)?;
                return Ok(Cond::IsValid(strip_hdr(h).to_string()));
            }
            self.pos = save;
        }
        let lhs = self.expr()?;
        let op = match self.bump() {
            Tok::EqEq => CmpOp::Eq,
            Tok::NotEq => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Gt => CmpOp::Gt,
            Tok::Le => CmpOp::Le,
            Tok::Ge => CmpOp::Ge,
            other => return self.err(format!("expected comparison operator, found {other}")),
        };
        let rhs = self.expr()?;
        Ok(Cond::Cmp(op, lhs, rhs))
    }

    fn peek_is_cmp(&self) -> bool {
        matches!(
            self.peek(),
            Tok::EqEq | Tok::NotEq | Tok::Lt | Tok::Gt | Tok::Le | Tok::Ge
        )
    }

    // ----- arithmetic expressions -----------------------------------------

    /// `expr := or_expr` (bitwise-or is the loosest arithmetic operator).
    pub(crate) fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.xor_expr()?;
        while self.eat(Tok::Pipe) {
            let rhs = self.xor_expr()?;
            lhs = Expr::bin(AOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn xor_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(Tok::Caret) {
            let rhs = self.and_expr()?;
            lhs = Expr::bin(AOp::Xor, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.shift_expr()?;
        while self.eat(Tok::Amp) {
            let rhs = self.shift_expr()?;
            lhs = Expr::bin(AOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn shift_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.add_expr()?;
        loop {
            if self.eat(Tok::Shl) {
                let n = self.num()? as u16;
                lhs = Expr::Shl(Box::new(lhs), n);
            } else if self.eat(Tok::Shr) {
                let n = self.num()? as u16;
                lhs = Expr::Shr(Box::new(lhs), n);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            if self.eat(Tok::Plus) {
                let rhs = self.unary_expr()?;
                lhs = Expr::bin(AOp::Add, lhs, rhs);
            } else if self.eat(Tok::Minus) {
                let rhs = self.unary_expr()?;
                lhs = Expr::bin(AOp::Sub, lhs, rhs);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(Tok::Tilde) {
            let inner = self.unary_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Num(n) => {
                self.bump();
                Ok(Expr::Num(n))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) if name == "hash" => {
                self.bump();
                self.expect(Tok::LParen)?;
                let alg = match self.ident()?.as_str() {
                    "crc16" => HashAlg::Crc16,
                    "crc32" => HashAlg::Crc32,
                    "identity" => HashAlg::Identity,
                    "csum16" => HashAlg::Csum16,
                    other => return self.err(format!("unknown hash algorithm `{other}`")),
                };
                self.expect(Tok::Comma)?;
                let width = self.num()? as u16;
                let mut args = Vec::new();
                while self.eat(Tok::Comma) {
                    args.push(self.expr()?);
                }
                self.expect(Tok::RParen)?;
                Ok(Expr::Hash(alg, width, args))
            }
            Tok::Ident(_) => {
                let start = self.pos;
                let name = self.ident()?;
                if *self.peek() == Tok::LBracket {
                    self.bump();
                    let idx = self.num()? as u32;
                    self.expect(Tok::RBracket)?;
                    return Ok(Expr::Register(name, idx));
                }
                self.pos = start;
                let dotted = self.dotted()?;
                if dotted.contains('.') {
                    Ok(Expr::Field(dotted))
                } else {
                    // A bare identifier is an action parameter; the compiler
                    // rejects it if it does not resolve.
                    Ok(Expr::Param(dotted))
                }
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

/// Header references in `setValid`/`isValid` may be written `hdr.x` or `x`;
/// normalize to the bare header name.
fn strip_hdr(s: &str) -> &str {
    s.strip_prefix("hdr.").unwrap_or(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = r#"
        # A tiny router.
        header ethernet { dst: 48; src: 48; ether_type: 16; }
        header ipv4 { ttl: 8; protocol: 8; dst_addr: 32; }
        metadata meta { egress_port: 9; drop: 1; }

        parser main {
          state start {
            extract(ethernet);
            select (hdr.ethernet.ether_type) {
              0x0800 => parse_ipv4;
              default => accept;
            }
          }
          state parse_ipv4 { extract(ipv4); accept; }
        }

        action set_port(port: 9) { meta.egress_port = port; }
        action drop_() { meta.drop = 1; }

        table route {
          key = { hdr.ipv4.dst_addr: lpm; }
          actions = { set_port; drop_; }
          default_action = drop_();
          size = 1024;
        }

        control ig {
          if (hdr.ipv4.isValid()) {
            apply(route);
          } else {
            call drop_();
          }
        }

        pipeline ingress0 { parser = main; control = ig; }
        topology { start -> ingress0; ingress0 -> end; }
        deparser { emit(ethernet); emit(ipv4); }

        intent no_blackhole {
          given hdr.ethernet.ether_type == 0x0800;
          expect meta.drop == 1 || meta.egress_port != 0;
        }
    "#;

    #[test]
    fn parses_full_program() {
        let p = parse_program(SMALL).unwrap();
        assert_eq!(p.headers.len(), 2);
        assert_eq!(p.headers[0].name, "ethernet");
        assert_eq!(p.headers[0].fields[0], ("dst".into(), 48));
        assert_eq!(p.metadatas.len(), 1);
        assert_eq!(p.parsers.len(), 1);
        assert_eq!(p.parsers[0].states.len(), 2);
        assert_eq!(p.actions.len(), 2);
        assert_eq!(p.tables.len(), 1);
        assert_eq!(p.controls.len(), 1);
        assert_eq!(p.pipelines.len(), 1);
        assert_eq!(p.topology.len(), 2);
        assert_eq!(p.deparser, vec!["ethernet", "ipv4"]);
        assert_eq!(p.intents.len(), 1);
        assert!(p.loc > 20);
    }

    #[test]
    fn parser_select_arms() {
        let p = parse_program(SMALL).unwrap();
        match &p.parsers[0].states[0].transition {
            Transition::Select {
                scrutinee,
                arms,
                default,
            } => {
                assert_eq!(scrutinee, &Expr::Field("hdr.ethernet.ether_type".into()));
                assert_eq!(arms.len(), 1);
                assert_eq!(arms[0], (SelectPattern::Exact(0x800), "parse_ipv4".into()));
                assert_eq!(default, "accept");
            }
            other => panic!("unexpected transition {other:?}"),
        }
    }

    #[test]
    fn action_bodies() {
        let p = parse_program(SMALL).unwrap();
        let a = &p.actions[0];
        assert_eq!(a.params, vec![("port".into(), 9)]);
        match &a.body[0] {
            ActionStmt::Assign(LValue::Field(f), Expr::Param(pm)) => {
                assert_eq!(f, "meta.egress_port");
                assert_eq!(pm, "port");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn table_structure() {
        let p = parse_program(SMALL).unwrap();
        let t = &p.tables[0];
        assert_eq!(t.keys, vec![("hdr.ipv4.dst_addr".into(), MatchKind::Lpm)]);
        assert_eq!(t.actions, vec!["set_port", "drop_"]);
        assert_eq!(t.default_action, Some(("drop_".into(), vec![])));
        assert_eq!(t.size, 1024);
    }

    #[test]
    fn control_if_else() {
        let p = parse_program(SMALL).unwrap();
        match &p.controls[0].body[0] {
            CtrlStmt::If(Cond::IsValid(h), then, els) => {
                assert_eq!(h, "ipv4");
                assert!(matches!(then[0], CtrlStmt::Apply(ref t) if t == "route"));
                assert!(matches!(els[0], CtrlStmt::Call(ref a, _) if a == "drop_"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn intent_conditions() {
        let p = parse_program(SMALL).unwrap();
        let i = &p.intents[0];
        assert!(matches!(i.given, Cond::Cmp(CmpOp::Eq, _, _)));
        assert!(matches!(i.expect, Cond::Or(_, _)));
    }

    #[test]
    fn setvalid_and_setinvalid() {
        let src = r#"
            action encap() { hdr.vxlan.setValid(); hdr.inner.setInvalid(); }
        "#;
        let mut full = String::from("header vxlan { vni: 24; }\nheader inner { x: 8; }\n");
        full.push_str(src);
        let p = parse_program(&full).unwrap();
        assert!(matches!(&p.actions[0].body[0], ActionStmt::SetValid(h) if h == "vxlan"));
        assert!(matches!(&p.actions[0].body[1], ActionStmt::SetInvalid(h) if h == "inner"));
    }

    #[test]
    fn hash_expression() {
        let src = "action h() { meta.idx = hash(crc16, 16, hdr.ip.src, hdr.ip.dst); }";
        let full = format!("header ip {{ src: 32; dst: 32; }}\nmetadata meta {{ idx: 16; }}\n{src}");
        let p = parse_program(&full).unwrap();
        match &p.actions[0].body[0] {
            ActionStmt::Assign(_, Expr::Hash(HashAlg::Crc16, 16, args)) => {
                assert_eq!(args.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn register_lvalue_and_rvalue() {
        let src = r#"
            register counters[64]: 32;
            metadata meta { x: 32; }
            action bump() { counters[3] = counters[3] + 1; meta.x = counters[0]; }
        "#;
        let p = parse_program(src).unwrap();
        match &p.actions[0].body[0] {
            ActionStmt::Assign(LValue::Register(n, 3), rhs) => {
                assert_eq!(n, "counters");
                assert!(matches!(rhs, Expr::Bin(AOp::Add, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let src = "intent i { given meta.a + meta.b & meta.c == 1; expect true; }";
        let full = format!("metadata meta {{ a: 8; b: 8; c: 8; }}\n{src}");
        let p = parse_program(&full).unwrap();
        // `a + b & c` parses as `(a + b) & c` (& looser than +).
        match &p.intents[0].given {
            Cond::Cmp(CmpOp::Eq, Expr::Bin(AOp::And, lhs, _), _) => {
                assert!(matches!(**lhs, Expr::Bin(AOp::Add, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parenthesized_conditions() {
        let src = "intent i { given (meta.a == 1 || meta.b == 2) && meta.c != 3; expect true; }";
        let full = format!("metadata meta {{ a: 8; b: 8; c: 8; }}\n{src}");
        let p = parse_program(&full).unwrap();
        assert!(matches!(&p.intents[0].given, Cond::And(l, _) if matches!(**l, Cond::Or(_, _))));
    }

    #[test]
    fn topology_when_clauses() {
        let src = r#"
            metadata meta { port: 9; }
            topology {
              start -> a;
              a -> b when (meta.port == 1);
              a -> c when (meta.port != 1);
              b -> end;
              c -> end;
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.topology.len(), 5);
        assert!(p.topology[1].when.is_some());
        assert!(p.topology[0].when.is_none());
    }

    #[test]
    fn select_mask_and_range_patterns() {
        let src = r#"
            header h { t: 16; }
            parser p {
              state start {
                extract(h);
                select (hdr.h.t) {
                  0x8100 &&& 0xff00 => a;
                  10..20 => b;
                  default => accept;
                }
              }
              state a { accept; }
              state b { accept; }
            }
        "#;
        let p = parse_program(src).unwrap();
        match &p.parsers[0].states[0].transition {
            Transition::Select { arms, .. } => {
                assert_eq!(arms[0].0, SelectPattern::Mask(0x8100, 0xff00));
                assert_eq!(arms[1].0, SelectPattern::Range(10, 20));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_reports_line() {
        let src = "header h { a: 8; }\nbogus_item x;";
        let e = parse_program(src).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus_item"));
    }

    #[test]
    fn missing_control_in_pipeline_fails() {
        let e = parse_program("pipeline p { parser = x; }").unwrap_err();
        assert!(e.message.contains("missing control"));
    }
}
