//! JSON encodings for the P4lite AST ([`crate::ast`]).
//!
//! Hand-written against `meissa-testkit`'s `ToJson`/`FromJson` (the
//! hermetic replacement for the former `serde` derives). Conventions match
//! the rest of the workspace: structs are objects keyed by field name in
//! declaration order, unit enum variants are bare strings, payload variants
//! are single-key objects (`{"Goto": "state"}`), and multi-payload variants
//! carry an array.

use crate::ast::*;
use meissa_testkit::json::{tagged, untag, FromJson, Json, JsonError, ToJson};

impl ToJson for Program {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("headers".into(), self.headers.to_json()),
            ("metadatas".into(), self.metadatas.to_json()),
            ("registers".into(), self.registers.to_json()),
            ("parsers".into(), self.parsers.to_json()),
            ("actions".into(), self.actions.to_json()),
            ("tables".into(), self.tables.to_json()),
            ("controls".into(), self.controls.to_json()),
            ("pipelines".into(), self.pipelines.to_json()),
            ("topology".into(), self.topology.to_json()),
            ("deparser".into(), self.deparser.to_json()),
            ("intents".into(), self.intents.to_json()),
            ("loc".into(), self.loc.to_json()),
        ])
    }
}

impl FromJson for Program {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Program {
            headers: FromJson::from_json(v.field("headers")?)
                .map_err(|e: JsonError| e.context("Program.headers"))?,
            metadatas: FromJson::from_json(v.field("metadatas")?)
                .map_err(|e: JsonError| e.context("Program.metadatas"))?,
            registers: FromJson::from_json(v.field("registers")?)
                .map_err(|e: JsonError| e.context("Program.registers"))?,
            parsers: FromJson::from_json(v.field("parsers")?)
                .map_err(|e: JsonError| e.context("Program.parsers"))?,
            actions: FromJson::from_json(v.field("actions")?)
                .map_err(|e: JsonError| e.context("Program.actions"))?,
            tables: FromJson::from_json(v.field("tables")?)
                .map_err(|e: JsonError| e.context("Program.tables"))?,
            controls: FromJson::from_json(v.field("controls")?)
                .map_err(|e: JsonError| e.context("Program.controls"))?,
            pipelines: FromJson::from_json(v.field("pipelines")?)
                .map_err(|e: JsonError| e.context("Program.pipelines"))?,
            topology: FromJson::from_json(v.field("topology")?)
                .map_err(|e: JsonError| e.context("Program.topology"))?,
            deparser: FromJson::from_json(v.field("deparser")?)
                .map_err(|e: JsonError| e.context("Program.deparser"))?,
            intents: FromJson::from_json(v.field("intents")?)
                .map_err(|e: JsonError| e.context("Program.intents"))?,
            loc: FromJson::from_json(v.field("loc")?)
                .map_err(|e: JsonError| e.context("Program.loc"))?,
        })
    }
}

impl ToJson for HeaderDecl {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("fields".into(), self.fields.to_json()),
        ])
    }
}

impl FromJson for HeaderDecl {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(HeaderDecl {
            name: FromJson::from_json(v.field("name")?)
                .map_err(|e: JsonError| e.context("HeaderDecl.name"))?,
            fields: FromJson::from_json(v.field("fields")?)
                .map_err(|e: JsonError| e.context("HeaderDecl.fields"))?,
        })
    }
}

impl ToJson for MetadataDecl {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("fields".into(), self.fields.to_json()),
        ])
    }
}

impl FromJson for MetadataDecl {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(MetadataDecl {
            name: FromJson::from_json(v.field("name")?)
                .map_err(|e: JsonError| e.context("MetadataDecl.name"))?,
            fields: FromJson::from_json(v.field("fields")?)
                .map_err(|e: JsonError| e.context("MetadataDecl.fields"))?,
        })
    }
}

impl ToJson for RegisterDecl {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("size".into(), self.size.to_json()),
            ("width".into(), self.width.to_json()),
        ])
    }
}

impl FromJson for RegisterDecl {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(RegisterDecl {
            name: FromJson::from_json(v.field("name")?)
                .map_err(|e: JsonError| e.context("RegisterDecl.name"))?,
            size: FromJson::from_json(v.field("size")?)
                .map_err(|e: JsonError| e.context("RegisterDecl.size"))?,
            width: FromJson::from_json(v.field("width")?)
                .map_err(|e: JsonError| e.context("RegisterDecl.width"))?,
        })
    }
}

impl ToJson for ParserDecl {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("states".into(), self.states.to_json()),
        ])
    }
}

impl FromJson for ParserDecl {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ParserDecl {
            name: FromJson::from_json(v.field("name")?)
                .map_err(|e: JsonError| e.context("ParserDecl.name"))?,
            states: FromJson::from_json(v.field("states")?)
                .map_err(|e: JsonError| e.context("ParserDecl.states"))?,
        })
    }
}

impl ToJson for ParserState {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("extracts".into(), self.extracts.to_json()),
            ("transition".into(), self.transition.to_json()),
        ])
    }
}

impl FromJson for ParserState {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ParserState {
            name: FromJson::from_json(v.field("name")?)
                .map_err(|e: JsonError| e.context("ParserState.name"))?,
            extracts: FromJson::from_json(v.field("extracts")?)
                .map_err(|e: JsonError| e.context("ParserState.extracts"))?,
            transition: FromJson::from_json(v.field("transition")?)
                .map_err(|e: JsonError| e.context("ParserState.transition"))?,
        })
    }
}

impl ToJson for Transition {
    fn to_json(&self) -> Json {
        match self {
            Transition::Accept => Json::Str("Accept".into()),
            Transition::Goto(s) => tagged("Goto", s.to_json()),
            Transition::Select {
                scrutinee,
                arms,
                default,
            } => tagged(
                "Select",
                Json::Obj(vec![
                    ("scrutinee".into(), scrutinee.to_json()),
                    ("arms".into(), arms.to_json()),
                    ("default".into(), default.to_json()),
                ]),
            ),
        }
    }
}

impl FromJson for Transition {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = untag(v).map_err(|e| e.context("Transition"))?;
        match tag {
            "Accept" => Ok(Transition::Accept),
            "Goto" => Ok(Transition::Goto(String::from_json(payload)?)),
            "Select" => Ok(Transition::Select {
                scrutinee: FromJson::from_json(payload.field("scrutinee")?)
                    .map_err(|e: JsonError| e.context("Select.scrutinee"))?,
                arms: FromJson::from_json(payload.field("arms")?)
                    .map_err(|e: JsonError| e.context("Select.arms"))?,
                default: FromJson::from_json(payload.field("default")?)
                    .map_err(|e: JsonError| e.context("Select.default"))?,
            }),
            other => Err(JsonError::new(format!("unknown Transition `{other}`"))),
        }
    }
}

impl ToJson for SelectPattern {
    fn to_json(&self) -> Json {
        match self {
            SelectPattern::Exact(v) => tagged("Exact", Json::UInt(*v)),
            SelectPattern::Mask(v, m) => {
                tagged("Mask", Json::Arr(vec![Json::UInt(*v), Json::UInt(*m)]))
            }
            SelectPattern::Range(a, b) => {
                tagged("Range", Json::Arr(vec![Json::UInt(*a), Json::UInt(*b)]))
            }
        }
    }
}

impl FromJson for SelectPattern {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = untag(v).map_err(|e| e.context("SelectPattern"))?;
        match tag {
            "Exact" => Ok(SelectPattern::Exact(u128::from_json(payload)?)),
            "Mask" => match payload.as_arr()? {
                [a, m] => Ok(SelectPattern::Mask(u128::from_json(a)?, u128::from_json(m)?)),
                _ => Err(JsonError::new("SelectPattern::Mask needs [value, mask]")),
            },
            "Range" => match payload.as_arr()? {
                [a, b] => Ok(SelectPattern::Range(u128::from_json(a)?, u128::from_json(b)?)),
                _ => Err(JsonError::new("SelectPattern::Range needs [lo, hi]")),
            },
            other => Err(JsonError::new(format!("unknown SelectPattern `{other}`"))),
        }
    }
}

impl ToJson for ActionDecl {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("params".into(), self.params.to_json()),
            ("body".into(), self.body.to_json()),
        ])
    }
}

impl FromJson for ActionDecl {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ActionDecl {
            name: FromJson::from_json(v.field("name")?)
                .map_err(|e: JsonError| e.context("ActionDecl.name"))?,
            params: FromJson::from_json(v.field("params")?)
                .map_err(|e: JsonError| e.context("ActionDecl.params"))?,
            body: FromJson::from_json(v.field("body")?)
                .map_err(|e: JsonError| e.context("ActionDecl.body"))?,
        })
    }
}

impl ToJson for ActionStmt {
    fn to_json(&self) -> Json {
        match self {
            ActionStmt::Assign(lv, e) => {
                tagged("Assign", Json::Arr(vec![lv.to_json(), e.to_json()]))
            }
            ActionStmt::SetValid(h) => tagged("SetValid", h.to_json()),
            ActionStmt::SetInvalid(h) => tagged("SetInvalid", h.to_json()),
        }
    }
}

impl FromJson for ActionStmt {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = untag(v).map_err(|e| e.context("ActionStmt"))?;
        match tag {
            "Assign" => match payload.as_arr()? {
                [lv, e] => Ok(ActionStmt::Assign(
                    LValue::from_json(lv)?,
                    Expr::from_json(e)?,
                )),
                _ => Err(JsonError::new("ActionStmt::Assign needs [lvalue, expr]")),
            },
            "SetValid" => Ok(ActionStmt::SetValid(String::from_json(payload)?)),
            "SetInvalid" => Ok(ActionStmt::SetInvalid(String::from_json(payload)?)),
            other => Err(JsonError::new(format!("unknown ActionStmt `{other}`"))),
        }
    }
}

impl ToJson for LValue {
    fn to_json(&self) -> Json {
        match self {
            LValue::Field(f) => tagged("Field", f.to_json()),
            LValue::Register(r, i) => {
                tagged("Register", Json::Arr(vec![r.to_json(), i.to_json()]))
            }
        }
    }
}

impl FromJson for LValue {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = untag(v).map_err(|e| e.context("LValue"))?;
        match tag {
            "Field" => Ok(LValue::Field(String::from_json(payload)?)),
            "Register" => match payload.as_arr()? {
                [r, i] => Ok(LValue::Register(String::from_json(r)?, u32::from_json(i)?)),
                _ => Err(JsonError::new("LValue::Register needs [name, index]")),
            },
            other => Err(JsonError::new(format!("unknown LValue `{other}`"))),
        }
    }
}

impl ToJson for Expr {
    fn to_json(&self) -> Json {
        match self {
            Expr::Num(n) => tagged("Num", Json::UInt(*n)),
            Expr::Field(f) => tagged("Field", f.to_json()),
            Expr::Register(r, i) => {
                tagged("Register", Json::Arr(vec![r.to_json(), i.to_json()]))
            }
            Expr::Param(p) => tagged("Param", p.to_json()),
            Expr::Bin(op, a, b) => {
                tagged("Bin", Json::Arr(vec![op.to_json(), a.to_json(), b.to_json()]))
            }
            Expr::Not(a) => tagged("Not", a.to_json()),
            Expr::Shl(a, n) => tagged("Shl", Json::Arr(vec![a.to_json(), n.to_json()])),
            Expr::Shr(a, n) => tagged("Shr", Json::Arr(vec![a.to_json(), n.to_json()])),
            Expr::Hash(alg, w, args) => tagged(
                "Hash",
                Json::Arr(vec![alg.to_json(), w.to_json(), args.to_json()]),
            ),
        }
    }
}

impl FromJson for Expr {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = untag(v).map_err(|e| e.context("Expr"))?;
        match tag {
            "Num" => Ok(Expr::Num(u128::from_json(payload)?)),
            "Field" => Ok(Expr::Field(String::from_json(payload)?)),
            "Register" => match payload.as_arr()? {
                [r, i] => Ok(Expr::Register(String::from_json(r)?, u32::from_json(i)?)),
                _ => Err(JsonError::new("Expr::Register needs [name, index]")),
            },
            "Param" => Ok(Expr::Param(String::from_json(payload)?)),
            "Bin" => match payload.as_arr()? {
                [op, a, b] => Ok(Expr::bin(
                    meissa_ir::AOp::from_json(op)?,
                    Expr::from_json(a)?,
                    Expr::from_json(b)?,
                )),
                _ => Err(JsonError::new("Expr::Bin needs [op, a, b]")),
            },
            "Not" => Ok(Expr::Not(Box::new(Expr::from_json(payload)?))),
            "Shl" => match payload.as_arr()? {
                [a, n] => Ok(Expr::Shl(Box::new(Expr::from_json(a)?), u16::from_json(n)?)),
                _ => Err(JsonError::new("Expr::Shl needs [a, n]")),
            },
            "Shr" => match payload.as_arr()? {
                [a, n] => Ok(Expr::Shr(Box::new(Expr::from_json(a)?), u16::from_json(n)?)),
                _ => Err(JsonError::new("Expr::Shr needs [a, n]")),
            },
            "Hash" => match payload.as_arr()? {
                [alg, w, args] => Ok(Expr::Hash(
                    meissa_ir::HashAlg::from_json(alg)?,
                    u16::from_json(w)?,
                    Vec::<Expr>::from_json(args)?,
                )),
                _ => Err(JsonError::new("Expr::Hash needs [alg, width, args]")),
            },
            other => Err(JsonError::new(format!("unknown Expr `{other}`"))),
        }
    }
}

impl ToJson for Cond {
    fn to_json(&self) -> Json {
        match self {
            Cond::Bool(b) => tagged("Bool", b.to_json()),
            Cond::Cmp(op, a, b) => {
                tagged("Cmp", Json::Arr(vec![op.to_json(), a.to_json(), b.to_json()]))
            }
            Cond::And(a, b) => tagged("And", Json::Arr(vec![a.to_json(), b.to_json()])),
            Cond::Or(a, b) => tagged("Or", Json::Arr(vec![a.to_json(), b.to_json()])),
            Cond::Not(a) => tagged("Not", a.to_json()),
            Cond::IsValid(h) => tagged("IsValid", h.to_json()),
        }
    }
}

impl FromJson for Cond {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = untag(v).map_err(|e| e.context("Cond"))?;
        match tag {
            "Bool" => Ok(Cond::Bool(bool::from_json(payload)?)),
            "Cmp" => match payload.as_arr()? {
                [op, a, b] => Ok(Cond::Cmp(
                    meissa_ir::CmpOp::from_json(op)?,
                    Expr::from_json(a)?,
                    Expr::from_json(b)?,
                )),
                _ => Err(JsonError::new("Cond::Cmp needs [op, a, b]")),
            },
            "And" => match payload.as_arr()? {
                [a, b] => Ok(Cond::And(
                    Box::new(Cond::from_json(a)?),
                    Box::new(Cond::from_json(b)?),
                )),
                _ => Err(JsonError::new("Cond::And needs [a, b]")),
            },
            "Or" => match payload.as_arr()? {
                [a, b] => Ok(Cond::Or(
                    Box::new(Cond::from_json(a)?),
                    Box::new(Cond::from_json(b)?),
                )),
                _ => Err(JsonError::new("Cond::Or needs [a, b]")),
            },
            "Not" => Ok(Cond::Not(Box::new(Cond::from_json(payload)?))),
            "IsValid" => Ok(Cond::IsValid(String::from_json(payload)?)),
            other => Err(JsonError::new(format!("unknown Cond `{other}`"))),
        }
    }
}

impl ToJson for MatchKind {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                MatchKind::Exact => "Exact",
                MatchKind::Lpm => "Lpm",
                MatchKind::Ternary => "Ternary",
                MatchKind::Range => "Range",
            }
            .into(),
        )
    }
}

impl FromJson for MatchKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str().map_err(|e| e.context("MatchKind"))? {
            "Exact" => Ok(MatchKind::Exact),
            "Lpm" => Ok(MatchKind::Lpm),
            "Ternary" => Ok(MatchKind::Ternary),
            "Range" => Ok(MatchKind::Range),
            other => Err(JsonError::new(format!("unknown MatchKind `{other}`"))),
        }
    }
}

impl ToJson for TableDecl {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("keys".into(), self.keys.to_json()),
            ("actions".into(), self.actions.to_json()),
            ("default_action".into(), self.default_action.to_json()),
            ("size".into(), self.size.to_json()),
        ])
    }
}

impl FromJson for TableDecl {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(TableDecl {
            name: FromJson::from_json(v.field("name")?)
                .map_err(|e: JsonError| e.context("TableDecl.name"))?,
            keys: FromJson::from_json(v.field("keys")?)
                .map_err(|e: JsonError| e.context("TableDecl.keys"))?,
            actions: FromJson::from_json(v.field("actions")?)
                .map_err(|e: JsonError| e.context("TableDecl.actions"))?,
            default_action: FromJson::from_json(v.field("default_action")?)
                .map_err(|e: JsonError| e.context("TableDecl.default_action"))?,
            size: FromJson::from_json(v.field("size")?)
                .map_err(|e: JsonError| e.context("TableDecl.size"))?,
        })
    }
}

impl ToJson for ControlDecl {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("body".into(), self.body.to_json()),
        ])
    }
}

impl FromJson for ControlDecl {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ControlDecl {
            name: FromJson::from_json(v.field("name")?)
                .map_err(|e: JsonError| e.context("ControlDecl.name"))?,
            body: FromJson::from_json(v.field("body")?)
                .map_err(|e: JsonError| e.context("ControlDecl.body"))?,
        })
    }
}

impl ToJson for CtrlStmt {
    fn to_json(&self) -> Json {
        match self {
            CtrlStmt::Apply(t) => tagged("Apply", t.to_json()),
            CtrlStmt::If(c, then, els) => tagged(
                "If",
                Json::Arr(vec![c.to_json(), then.to_json(), els.to_json()]),
            ),
            CtrlStmt::Call(a, args) => {
                tagged("Call", Json::Arr(vec![a.to_json(), args.to_json()]))
            }
        }
    }
}

impl FromJson for CtrlStmt {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = untag(v).map_err(|e| e.context("CtrlStmt"))?;
        match tag {
            "Apply" => Ok(CtrlStmt::Apply(String::from_json(payload)?)),
            "If" => match payload.as_arr()? {
                [c, then, els] => Ok(CtrlStmt::If(
                    Cond::from_json(c)?,
                    Vec::<CtrlStmt>::from_json(then)?,
                    Vec::<CtrlStmt>::from_json(els)?,
                )),
                _ => Err(JsonError::new("CtrlStmt::If needs [cond, then, else]")),
            },
            "Call" => match payload.as_arr()? {
                [a, args] => Ok(CtrlStmt::Call(
                    String::from_json(a)?,
                    Vec::<u128>::from_json(args)?,
                )),
                _ => Err(JsonError::new("CtrlStmt::Call needs [action, args]")),
            },
            other => Err(JsonError::new(format!("unknown CtrlStmt `{other}`"))),
        }
    }
}

impl ToJson for PipelineDecl {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("parser".into(), self.parser.to_json()),
            ("control".into(), self.control.to_json()),
        ])
    }
}

impl FromJson for PipelineDecl {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(PipelineDecl {
            name: FromJson::from_json(v.field("name")?)
                .map_err(|e: JsonError| e.context("PipelineDecl.name"))?,
            parser: FromJson::from_json(v.field("parser")?)
                .map_err(|e: JsonError| e.context("PipelineDecl.parser"))?,
            control: FromJson::from_json(v.field("control")?)
                .map_err(|e: JsonError| e.context("PipelineDecl.control"))?,
        })
    }
}

impl ToJson for TopoEdge {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("from".into(), self.from.to_json()),
            ("to".into(), self.to.to_json()),
            ("when".into(), self.when.to_json()),
        ])
    }
}

impl FromJson for TopoEdge {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(TopoEdge {
            from: FromJson::from_json(v.field("from")?)
                .map_err(|e: JsonError| e.context("TopoEdge.from"))?,
            to: FromJson::from_json(v.field("to")?)
                .map_err(|e: JsonError| e.context("TopoEdge.to"))?,
            when: FromJson::from_json(v.field("when")?)
                .map_err(|e: JsonError| e.context("TopoEdge.when"))?,
        })
    }
}

impl ToJson for IntentDecl {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("given".into(), self.given.to_json()),
            ("expect".into(), self.expect.to_json()),
        ])
    }
}

impl FromJson for IntentDecl {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(IntentDecl {
            name: FromJson::from_json(v.field("name")?)
                .map_err(|e: JsonError| e.context("IntentDecl.name"))?,
            given: FromJson::from_json(v.field("given")?)
                .map_err(|e: JsonError| e.context("IntentDecl.given"))?,
            expect: FromJson::from_json(v.field("expect")?)
                .map_err(|e: JsonError| e.context("IntentDecl.expect"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_json_roundtrip() {
        let src = r#"
            header eth { dst: 48; src: 48; ty: 16; }
            metadata meta { port: 9; }
            register counters[4]: 32;
            parser p {
              state start {
                extract(eth);
                select (hdr.eth.ty) {
                  0x0800 => mid;
                  0x8100 &&& 0xff00 => mid;
                  1..9 => mid;
                  default => accept;
                }
              }
              state mid { goto fin; }
              state fin { accept; }
            }
            action set_port(port: 9) { meta.port = port; }
            action bump() { counters[0] = counters[0] + 1; }
            table t {
              key = { hdr.eth.ty: exact; hdr.eth.dst: ternary; }
              actions = { set_port; bump; }
              default_action = set_port(0);
              size = 16;
            }
            control c {
              if (hdr.eth.isValid() && hdr.eth.ty == 0x0800) { apply(t); } else { call bump(); }
            }
            pipeline ingress0 { parser = p; control = c; }
            topology { start -> ingress0; ingress0 -> end; }
            intent keep_port { given hdr.eth.ty == 0x0800; expect meta.port != 0; }
        "#;
        let prog = crate::parse_program(src).expect("example parses");
        let text = prog.to_json_text();
        let back = Program::from_json_text(&text).expect("decodes");
        // The AST has no PartialEq; byte-stable re-encode is the equality
        // proxy, backed by structural spot checks.
        assert_eq!(back.to_json_text(), text);
        assert_eq!(back.headers.len(), prog.headers.len());
        assert_eq!(back.actions.len(), prog.actions.len());
        assert_eq!(back.tables[0].keys, prog.tables[0].keys);
        assert_eq!(back.loc, prog.loc);
    }
}
