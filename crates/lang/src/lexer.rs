//! The P4lite lexer.
//!
//! Hand-rolled scanner producing a flat token vector with line numbers for
//! diagnostics. Notable literal forms:
//!
//! * decimal and `0x` hexadecimal integers;
//! * dotted IPv4 literals `10.0.0.1` (lexed as one 32-bit number token —
//!   the scanner distinguishes `10.0.0.1` from `10..20` by lookahead);
//! * `a..b` appears as `Num DotDot Num` and is handled by the parser.

use std::fmt;

/// A token with its source line (1-based) for error messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (decimal, hex, or dotted IPv4).
    Num(u128),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `=>`
    FatArrow,
    /// `->`
    Arrow,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `&&&`
    TernaryMask,
    /// `!`
    Bang,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Eq,
    /// `_`
    Underscore,
    /// `/` (prefix length separator in rules)
    Slash,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Num(n) => write!(f, "number `{n}`"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A lexing failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Explanation.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Lexes source text into tokens (with a trailing [`Tok::Eof`]).
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Vec::new();
    macro_rules! push {
        ($k:expr) => {
            out.push(Token { kind: $k, line })
        };
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                push!(Tok::LBrace);
                i += 1;
            }
            '}' => {
                push!(Tok::RBrace);
                i += 1;
            }
            '(' => {
                push!(Tok::LParen);
                i += 1;
            }
            ')' => {
                push!(Tok::RParen);
                i += 1;
            }
            '[' => {
                push!(Tok::LBracket);
                i += 1;
            }
            ']' => {
                push!(Tok::RBracket);
                i += 1;
            }
            ';' => {
                push!(Tok::Semi);
                i += 1;
            }
            ':' => {
                push!(Tok::Colon);
                i += 1;
            }
            ',' => {
                push!(Tok::Comma);
                i += 1;
            }
            '+' => {
                push!(Tok::Plus);
                i += 1;
            }
            '^' => {
                push!(Tok::Caret);
                i += 1;
            }
            '~' => {
                push!(Tok::Tilde);
                i += 1;
            }
            '/' => {
                push!(Tok::Slash);
                i += 1;
            }
            '_' if i + 1 >= bytes.len() || !ident_char(bytes[i + 1]) => {
                push!(Tok::Underscore);
                i += 1;
            }
            '.' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'.' {
                    push!(Tok::DotDot);
                    i += 2;
                } else {
                    push!(Tok::Dot);
                    i += 1;
                }
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    push!(Tok::Arrow);
                    i += 2;
                } else {
                    push!(Tok::Minus);
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::EqEq);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    push!(Tok::FatArrow);
                    i += 2;
                } else {
                    push!(Tok::Eq);
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::NotEq);
                    i += 2;
                } else {
                    push!(Tok::Bang);
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'<' {
                    push!(Tok::Shl);
                    i += 2;
                } else {
                    push!(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Ge);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    push!(Tok::Shr);
                    i += 2;
                } else {
                    push!(Tok::Gt);
                    i += 1;
                }
            }
            '&' => {
                if i + 2 < bytes.len() && bytes[i + 1] == b'&' && bytes[i + 2] == b'&' {
                    push!(Tok::TernaryMask);
                    i += 3;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'&' {
                    push!(Tok::AndAnd);
                    i += 2;
                } else {
                    push!(Tok::Amp);
                    i += 1;
                }
            }
            '|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                    push!(Tok::OrOr);
                    i += 2;
                } else {
                    push!(Tok::Pipe);
                    i += 1;
                }
            }
            '0'..='9' => {
                let (tok, next) = lex_number(bytes, i, line)?;
                out.push(Token { kind: tok, line });
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '@' || c == '$' => {
                let start = i;
                i += 1;
                while i < bytes.len() && ident_char(bytes[i]) {
                    i += 1;
                }
                push!(Tok::Ident(src[start..i].to_string()));
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    line,
                })
            }
        }
    }
    out.push(Token {
        kind: Tok::Eof,
        line,
    });
    Ok(out)
}

fn ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'$'
}

/// Lexes a number starting at `i`. Handles decimal, `0x` hex, and dotted
/// IPv4 (`a.b.c.d` becomes one 32-bit value). A `..` after digits is left
/// for the parser (range syntax).
fn lex_number(bytes: &[u8], mut i: usize, line: u32) -> Result<(Tok, usize), LexError> {
    let err = |m: String| LexError { message: m, line };
    if bytes[i] == b'0' && i + 1 < bytes.len() && (bytes[i + 1] == b'x' || bytes[i + 1] == b'X') {
        i += 2;
        let start = i;
        while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
            i += 1;
        }
        if start == i {
            return Err(err("empty hex literal".into()));
        }
        let s = std::str::from_utf8(&bytes[start..i]).unwrap();
        let v = u128::from_str_radix(s, 16).map_err(|e| err(format!("bad hex literal: {e}")))?;
        return Ok((Tok::Num(v), i));
    }
    let read_dec = |bytes: &[u8], mut j: usize| -> (u128, usize) {
        let start = j;
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            j += 1;
        }
        let s = std::str::from_utf8(&bytes[start..j]).unwrap();
        (s.parse().unwrap_or(u128::MAX), j)
    };
    let (first, mut j) = read_dec(bytes, i);
    // Try dotted IPv4: exactly `a.b.c.d` where each part is a decimal octet
    // and the dot is a single dot (not `..`).
    let mut parts = vec![first];
    let mut k = j;
    while parts.len() < 4
        && k < bytes.len()
        && bytes[k] == b'.'
        && k + 1 < bytes.len()
        && bytes[k + 1].is_ascii_digit()
        && (k + 1 >= bytes.len() || bytes[k + 1] != b'.')
    {
        let (p, nk) = read_dec(bytes, k + 1);
        parts.push(p);
        k = nk;
    }
    if parts.len() == 4 {
        for &p in &parts {
            if p > 255 {
                return Err(err(format!("IPv4 octet {p} out of range")));
            }
        }
        let v = (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3];
        j = k;
        return Ok((Tok::Num(v), j));
    }
    Ok((Tok::Num(first), j))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let t = kinds("header h { a: 8; }");
        assert_eq!(
            t,
            vec![
                Tok::Ident("header".into()),
                Tok::Ident("h".into()),
                Tok::LBrace,
                Tok::Ident("a".into()),
                Tok::Colon,
                Tok::Num(8),
                Tok::Semi,
                Tok::RBrace,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers_decimal_hex_ip() {
        assert_eq!(kinds("42")[0], Tok::Num(42));
        assert_eq!(kinds("0x0800")[0], Tok::Num(0x800));
        assert_eq!(kinds("10.0.0.1")[0], Tok::Num(0x0a000001));
        assert_eq!(kinds("255.255.255.0")[0], Tok::Num(0xffffff00));
    }

    #[test]
    fn range_is_not_an_ip() {
        assert_eq!(
            kinds("10..20"),
            vec![Tok::Num(10), Tok::DotDot, Tok::Num(20), Tok::Eof]
        );
    }

    #[test]
    fn dotted_field_names() {
        assert_eq!(
            kinds("hdr.ipv4.ttl"),
            vec![
                Tok::Ident("hdr".into()),
                Tok::Dot,
                Tok::Ident("ipv4".into()),
                Tok::Dot,
                Tok::Ident("ttl".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("== != <= >= < > << >> && || &&& & | ! ~ ^ + - -> => = .."),
            vec![
                Tok::EqEq,
                Tok::NotEq,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::Shl,
                Tok::Shr,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::TernaryMask,
                Tok::Amp,
                Tok::Pipe,
                Tok::Bang,
                Tok::Tilde,
                Tok::Caret,
                Tok::Plus,
                Tok::Minus,
                Tok::Arrow,
                Tok::FatArrow,
                Tok::Eq,
                Tok::DotDot,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let t = kinds("a # comment with { } tokens\nb // also ; skipped\nc");
        assert_eq!(
            t,
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn underscore_alone_vs_in_ident() {
        assert_eq!(kinds("_")[0], Tok::Underscore);
        assert_eq!(kinds("_x")[0], Tok::Ident("_x".into()));
        assert_eq!(kinds("drop_")[0], Tok::Ident("drop_".into()));
    }

    #[test]
    fn bad_ip_octet_fails() {
        // 300.1.2.3 is an octet error because the 4-part pattern matched.
        let e = lex("300.1.2.3").unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn unexpected_character_reports_line() {
        let e = lex("a\nb\n%").unwrap_err();
        assert_eq!(e.line, 3);
    }
}
