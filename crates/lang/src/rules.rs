//! Table rule sets — the third Meissa input (Fig. 2).
//!
//! Rules are supplied as a separate text document (in production they come
//! from the control plane; in the evaluation they are collected from
//! deployed switches or generated). Format:
//!
//! ```text
//! rules <table> {
//!   <key>, <key>, … => <action>(<args>);      # one line per rule
//! }
//! ```
//!
//! with key forms matching the table's declared match kinds:
//!
//! * exact:   `42`, `0x0800`, `10.1.1.1`
//! * lpm:     `10.0.0.0/8`
//! * ternary: `0x8100 &&& 0xff00`, or `_` for a full wildcard
//! * range:   `80..443`
//!
//! Rule order is priority order (first match wins), like P4 ternary tables.

use crate::lexer::{lex, Tok, Token};
use crate::parser::ParseError;
use meissa_testkit::json::{tagged, untag, FromJson, Json, JsonError, ToJson};
use std::collections::HashMap;

/// One key cell of a rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KeyMatch {
    /// Exact value.
    Exact(u128),
    /// Prefix match: value plus prefix length.
    Prefix(u128, u16),
    /// Ternary: value plus mask.
    Ternary(u128, u128),
    /// Inclusive range.
    Range(u128, u128),
    /// Wildcard (`_`).
    Any,
}

/// One installed table rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// Key cells, in the table's declared key order.
    pub keys: Vec<KeyMatch>,
    /// Action to run on match.
    pub action: String,
    /// Constant action arguments.
    pub args: Vec<u128>,
}

/// A full rule set: table name → rules in priority order.
#[derive(Clone, Debug, Default)]
pub struct RuleSet {
    tables: HashMap<String, Vec<Rule>>,
    /// Source lines of code of the rule document (Table 1 reports rule-set
    /// scale in LOC: "set-4 is more than 200,000 LOC").
    pub loc: usize,
}

impl RuleSet {
    /// Creates an empty rule set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rules for a table (empty slice if none installed).
    pub fn rules_for(&self, table: &str) -> &[Rule] {
        self.tables.get(table).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Installs a rule programmatically (used by the suite generators).
    pub fn push(&mut self, table: &str, rule: Rule) {
        self.tables.entry(table.to_string()).or_default().push(rule);
        self.loc += 1;
    }

    /// Total number of rules across all tables.
    pub fn total_rules(&self) -> usize {
        self.tables.values().map(Vec::len).sum()
    }

    /// Table names with at least one rule.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Renders the rule set back to its text format (round-trips through
    /// [`parse_rules`]); used to materialize generated rule sets.
    pub fn to_text(&self) -> String {
        let mut names: Vec<&String> = self.tables.keys().collect();
        names.sort();
        let mut out = String::new();
        for name in names {
            out.push_str(&format!("rules {name} {{\n"));
            for r in &self.tables[name] {
                let keys: Vec<String> = r
                    .keys
                    .iter()
                    .map(|k| match k {
                        KeyMatch::Exact(v) => format!("{v}"),
                        KeyMatch::Prefix(v, l) => format!("0x{v:x}/{l}"),
                        KeyMatch::Ternary(v, m) => format!("0x{v:x} &&& 0x{m:x}"),
                        KeyMatch::Range(a, b) => format!("{a}..{b}"),
                        KeyMatch::Any => "_".to_string(),
                    })
                    .collect();
                let args: Vec<String> = r.args.iter().map(u128::to_string).collect();
                out.push_str(&format!(
                    "  {} => {}({});\n",
                    keys.join(", "),
                    r.action,
                    args.join(", ")
                ));
            }
            out.push_str("}\n");
        }
        out
    }
}

impl ToJson for KeyMatch {
    fn to_json(&self) -> Json {
        match self {
            KeyMatch::Exact(v) => tagged("Exact", Json::UInt(*v)),
            KeyMatch::Prefix(v, l) => {
                tagged("Prefix", Json::Arr(vec![Json::UInt(*v), l.to_json()]))
            }
            KeyMatch::Ternary(v, m) => {
                tagged("Ternary", Json::Arr(vec![Json::UInt(*v), Json::UInt(*m)]))
            }
            KeyMatch::Range(a, b) => {
                tagged("Range", Json::Arr(vec![Json::UInt(*a), Json::UInt(*b)]))
            }
            KeyMatch::Any => Json::Str("Any".into()),
        }
    }
}

impl FromJson for KeyMatch {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = untag(v).map_err(|e| e.context("KeyMatch"))?;
        match tag {
            "Exact" => Ok(KeyMatch::Exact(u128::from_json(payload)?)),
            "Prefix" => match payload.as_arr()? {
                [v, l] => Ok(KeyMatch::Prefix(u128::from_json(v)?, u16::from_json(l)?)),
                _ => Err(JsonError::new("KeyMatch::Prefix needs [value, len]")),
            },
            "Ternary" => match payload.as_arr()? {
                [v, m] => Ok(KeyMatch::Ternary(u128::from_json(v)?, u128::from_json(m)?)),
                _ => Err(JsonError::new("KeyMatch::Ternary needs [value, mask]")),
            },
            "Range" => match payload.as_arr()? {
                [a, b] => Ok(KeyMatch::Range(u128::from_json(a)?, u128::from_json(b)?)),
                _ => Err(JsonError::new("KeyMatch::Range needs [lo, hi]")),
            },
            "Any" => Ok(KeyMatch::Any),
            other => Err(JsonError::new(format!("unknown KeyMatch `{other}`"))),
        }
    }
}

impl ToJson for Rule {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("keys".into(), self.keys.to_json()),
            ("action".into(), self.action.to_json()),
            ("args".into(), self.args.to_json()),
        ])
    }
}

impl FromJson for Rule {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Rule {
            keys: Vec::<KeyMatch>::from_json(v.field("keys")?)
                .map_err(|e| e.context("Rule.keys"))?,
            action: String::from_json(v.field("action")?)
                .map_err(|e| e.context("Rule.action"))?,
            args: Vec::<u128>::from_json(v.field("args")?)
                .map_err(|e| e.context("Rule.args"))?,
        })
    }
}

impl ToJson for RuleSet {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("tables".into(), self.tables.to_json()),
            ("loc".into(), self.loc.to_json()),
        ])
    }
}

impl FromJson for RuleSet {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(RuleSet {
            tables: HashMap::<String, Vec<Rule>>::from_json(v.field("tables")?)
                .map_err(|e| e.context("RuleSet.tables"))?,
            loc: usize::from_json(v.field("loc")?).map_err(|e| e.context("RuleSet.loc"))?,
        })
    }
}

/// Parses a rule document.
pub fn parse_rules(src: &str) -> Result<RuleSet, ParseError> {
    let tokens = lex(src)?;
    let mut p = RulesParser {
        tokens,
        pos: 0,
    };
    let mut set = p.rule_set()?;
    set.loc = crate::count_loc(src);
    Ok(set)
}

struct RulesParser {
    tokens: Vec<Token>,
    pos: usize,
}

impl RulesParser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            line: self.line(),
        })
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {tok}, found {}", self.peek()))
        }
    }

    fn eat(&mut self, tok: Tok) -> bool {
        if *self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn num(&mut self) -> Result<u128, ParseError> {
        match *self.peek() {
            Tok::Num(n) => {
                self.bump();
                Ok(n)
            }
            ref other => self.err(format!("expected number, found {other}")),
        }
    }

    fn rule_set(&mut self) -> Result<RuleSet, ParseError> {
        let mut set = RuleSet::new();
        while *self.peek() != Tok::Eof {
            match self.ident()?.as_str() {
                "rules" => {}
                other => return self.err(format!("expected `rules`, found `{other}`")),
            }
            let table = self.ident()?;
            self.expect(Tok::LBrace)?;
            while !self.eat(Tok::RBrace) {
                let rule = self.rule()?;
                set.tables.entry(table.clone()).or_default().push(rule);
            }
        }
        Ok(set)
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        let mut keys = vec![self.key()?];
        while self.eat(Tok::Comma) {
            keys.push(self.key()?);
        }
        self.expect(Tok::FatArrow)?;
        let action = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        if !self.eat(Tok::RParen) {
            loop {
                args.push(self.num()?);
                if !self.eat(Tok::Comma) {
                    self.expect(Tok::RParen)?;
                    break;
                }
            }
        }
        self.expect(Tok::Semi)?;
        Ok(Rule { keys, action, args })
    }

    fn key(&mut self) -> Result<KeyMatch, ParseError> {
        if self.eat(Tok::Underscore) {
            return Ok(KeyMatch::Any);
        }
        let v = self.num()?;
        if self.eat(Tok::Slash) {
            let len = self.num()? as u16;
            Ok(KeyMatch::Prefix(v, len))
        } else if self.eat(Tok::TernaryMask) {
            Ok(KeyMatch::Ternary(v, self.num()?))
        } else if self.eat(Tok::DotDot) {
            Ok(KeyMatch::Range(v, self.num()?))
        } else {
            Ok(KeyMatch::Exact(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_key_forms() {
        let src = r#"
            rules route {
              10.0.0.0/8 => set_port(1);
              0x0800 &&& 0xff00 => set_port(2);
              80..443 => mark();
              42 => set_port(3);
              _ => drop_();
            }
        "#;
        let rs = parse_rules(src).unwrap();
        let rules = rs.rules_for("route");
        assert_eq!(rules.len(), 5);
        assert_eq!(rules[0].keys[0], KeyMatch::Prefix(0x0a000000, 8));
        assert_eq!(rules[1].keys[0], KeyMatch::Ternary(0x800, 0xff00));
        assert_eq!(rules[2].keys[0], KeyMatch::Range(80, 443));
        assert_eq!(rules[3].keys[0], KeyMatch::Exact(42));
        assert_eq!(rules[4].keys[0], KeyMatch::Any);
        assert_eq!(rules[0].action, "set_port");
        assert_eq!(rules[0].args, vec![1]);
        assert!(rules[2].args.is_empty());
    }

    #[test]
    fn multi_key_rules() {
        let src = "rules acl { 10.0.0.1, 10.0.0.2, 6 => permit(); _, _, _ => deny(); }";
        let rs = parse_rules(src).unwrap();
        let rules = rs.rules_for("acl");
        assert_eq!(rules[0].keys.len(), 3);
        assert_eq!(rules[1].keys, vec![KeyMatch::Any; 3]);
    }

    #[test]
    fn multiple_tables() {
        let src = "rules a { 1 => f(); } rules b { 2 => g(); 3 => g(); }";
        let rs = parse_rules(src).unwrap();
        assert_eq!(rs.rules_for("a").len(), 1);
        assert_eq!(rs.rules_for("b").len(), 2);
        assert_eq!(rs.total_rules(), 3);
        assert!(rs.rules_for("missing").is_empty());
    }

    #[test]
    fn text_roundtrip() {
        let mut rs = RuleSet::new();
        rs.push(
            "t1",
            Rule {
                keys: vec![
                    KeyMatch::Prefix(0x0a000000, 8),
                    KeyMatch::Range(1, 9),
                    KeyMatch::Ternary(0x10, 0xf0),
                    KeyMatch::Exact(7),
                    KeyMatch::Any,
                ],
                action: "go".into(),
                args: vec![1, 2],
            },
        );
        let text = rs.to_text();
        let back = parse_rules(&text).unwrap();
        assert_eq!(back.rules_for("t1"), rs.rules_for("t1"));
    }

    #[test]
    fn rule_order_is_preserved() {
        let src = "rules t { 1 => a(); 2 => b(); 3 => c(); }";
        let rs = parse_rules(src).unwrap();
        let actions: Vec<&str> = rs.rules_for("t").iter().map(|r| r.action.as_str()).collect();
        assert_eq!(actions, vec!["a", "b", "c"]);
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_rules("rules t { => f(); }").is_err());
        assert!(parse_rules("notrules t { }").is_err());
    }

    #[test]
    fn json_roundtrip() {
        let src = "rules t { 10.0.0.0/8, _ => go(1, 2); 80..443, 0x1 &&& 0xf => mark(); }";
        let rs = parse_rules(src).unwrap();
        let text = rs.to_json_text();
        let back = RuleSet::from_json_text(&text).unwrap();
        assert_eq!(back.rules_for("t"), rs.rules_for("t"));
        assert_eq!(back.loc, rs.loc);
        assert_eq!(back.to_json_text(), text, "stable re-encode");
    }

    #[test]
    fn loc_counts_rule_lines() {
        let src = "rules t {\n  1 => a();\n  2 => b();\n}\n";
        let rs = parse_rules(src).unwrap();
        assert_eq!(rs.loc, 4);
    }
}
