//! Static lints over a parsed program and its rule set.
//!
//! These are the checks the paper's deployment section motivates operators
//! to want *before* burning switch time: unused declarations, shadowed
//! (dead) rules, tables applied without any installed rule, and intents
//! that reference headers no parser can ever make valid. None of them are
//! errors — production programs legitimately stage unused objects — so
//! they surface as warnings.

use crate::ast::{CtrlStmt, MatchKind, Program, Transition};
use crate::rules::{KeyMatch, RuleSet};
use std::collections::HashSet;
use std::fmt;

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Lint {
    /// An action never referenced by any table or `call`.
    UnusedAction(String),
    /// A table never applied by any control.
    UnusedTable(String),
    /// A control not bound to any pipeline.
    UnusedControl(String),
    /// A parser not bound to any pipeline.
    UnusedParser(String),
    /// A table applied somewhere but with zero installed rules (only its
    /// default action can ever run).
    EmptyTable(String),
    /// Rule `index` (0-based) of `table` can never match: a
    /// higher-priority rule fully shadows it.
    ShadowedRule {
        /// Table name.
        table: String,
        /// 0-based index of the dead rule.
        index: usize,
        /// 0-based index of the shadowing rule.
        shadowed_by: usize,
    },
    /// A header declared but never extracted or `setValid`-ed: its
    /// validity bit can never be 1.
    NeverValidHeader(String),
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::UnusedAction(n) => write!(f, "action `{n}` is never used"),
            Lint::UnusedTable(n) => write!(f, "table `{n}` is never applied"),
            Lint::UnusedControl(n) => write!(f, "control `{n}` is not bound to a pipeline"),
            Lint::UnusedParser(n) => write!(f, "parser `{n}` is not bound to a pipeline"),
            Lint::EmptyTable(n) => {
                write!(f, "table `{n}` has no installed rules; only its default can run")
            }
            Lint::ShadowedRule {
                table,
                index,
                shadowed_by,
            } => write!(
                f,
                "rule #{index} of table `{table}` is dead: fully shadowed by rule #{shadowed_by}"
            ),
            Lint::NeverValidHeader(n) => {
                write!(f, "header `{n}` is never extracted or setValid-ed")
            }
        }
    }
}

/// Runs every lint over a program and its installed rules.
pub fn lint(prog: &Program, rules: &RuleSet) -> Vec<Lint> {
    let mut out = Vec::new();
    unused_items(prog, &mut out);
    table_rules(prog, rules, &mut out);
    never_valid_headers(prog, &mut out);
    out
}

fn collect_applied_tables(stmts: &[CtrlStmt], tables: &mut HashSet<String>, calls: &mut HashSet<String>) {
    for s in stmts {
        match s {
            CtrlStmt::Apply(t) => {
                tables.insert(t.clone());
            }
            CtrlStmt::Call(a, _) => {
                calls.insert(a.clone());
            }
            CtrlStmt::If(_, then, els) => {
                collect_applied_tables(then, tables, calls);
                collect_applied_tables(els, tables, calls);
            }
        }
    }
}

fn unused_items(prog: &Program, out: &mut Vec<Lint>) {
    let bound_controls: HashSet<&str> =
        prog.pipelines.iter().map(|p| p.control.as_str()).collect();
    let bound_parsers: HashSet<&str> = prog
        .pipelines
        .iter()
        .filter_map(|p| p.parser.as_deref())
        .collect();

    let mut applied = HashSet::new();
    let mut called = HashSet::new();
    for c in &prog.controls {
        if bound_controls.contains(c.name.as_str()) {
            collect_applied_tables(&c.body, &mut applied, &mut called);
        }
    }

    let mut used_actions: HashSet<String> = called;
    for t in &prog.tables {
        if applied.contains(&t.name) {
            used_actions.extend(t.actions.iter().cloned());
            if let Some((d, _)) = &t.default_action {
                used_actions.insert(d.clone());
            }
        }
    }

    for a in &prog.actions {
        if !used_actions.contains(&a.name) {
            out.push(Lint::UnusedAction(a.name.clone()));
        }
    }
    for t in &prog.tables {
        if !applied.contains(&t.name) {
            out.push(Lint::UnusedTable(t.name.clone()));
        }
    }
    for c in &prog.controls {
        if !bound_controls.contains(c.name.as_str()) {
            out.push(Lint::UnusedControl(c.name.clone()));
        }
    }
    for p in &prog.parsers {
        if !bound_parsers.contains(p.name.as_str()) {
            out.push(Lint::UnusedParser(p.name.clone()));
        }
    }
}

/// Does key cell `a` accept every value `b` accepts? (Conservative: only
/// definite containment returns true.)
fn key_covers(kind: MatchKind, a: &KeyMatch, b: &KeyMatch, width: u16) -> bool {
    use KeyMatch::*;
    let full = |len: u16| -> u128 {
        let ones = if width >= 128 {
            u128::MAX
        } else {
            (1u128 << width) - 1
        };
        if len == 0 {
            0
        } else {
            (ones << (width - len)) & ones
        }
    };
    let norm = |k: &KeyMatch| -> KeyMatch {
        match *k {
            Prefix(v, l) => Ternary(v & full(l), full(l)),
            other => other,
        }
    };
    let _ = kind;
    match (norm(a), norm(b)) {
        (Any, _) => true,
        (_, Any) => false,
        (Exact(x), Exact(y)) => x == y,
        (Ternary(v, m), Exact(y)) => (y & m) == (v & m),
        (Ternary(v1, m1), Ternary(v2, m2)) => {
            // a covers b iff a's mask is a subset of b's mask and they agree
            // on a's masked bits.
            (m1 & m2) == m1 && (v1 & m1) == (v2 & m1)
        }
        (Range(lo, hi), Exact(y)) => lo <= y && y <= hi,
        (Range(l1, h1), Range(l2, h2)) => l1 <= l2 && h2 <= h1,
        _ => false,
    }
}

fn table_rules(prog: &Program, rules: &RuleSet, out: &mut Vec<Lint>) {
    let mut applied = HashSet::new();
    let mut called = HashSet::new();
    let bound: HashSet<&str> = prog.pipelines.iter().map(|p| p.control.as_str()).collect();
    for c in &prog.controls {
        if bound.contains(c.name.as_str()) {
            collect_applied_tables(&c.body, &mut applied, &mut called);
        }
    }
    for t in &prog.tables {
        if !applied.contains(&t.name) {
            continue;
        }
        let rs = rules.rules_for(&t.name);
        if rs.is_empty() {
            out.push(Lint::EmptyTable(t.name.clone()));
            continue;
        }
        let widths: Vec<u16> = t
            .keys
            .iter()
            .map(|(field, _)| field_width(prog, field))
            .collect();
        for i in 1..rs.len() {
            for j in 0..i {
                let covered = rs[i]
                    .keys
                    .iter()
                    .zip(rs[j].keys.iter())
                    .zip(t.keys.iter().zip(&widths))
                    .all(|((ki, kj), ((_, kind), &w))| key_covers(*kind, kj, ki, w));
                if covered && rs[i].keys.len() == rs[j].keys.len() {
                    out.push(Lint::ShadowedRule {
                        table: t.name.clone(),
                        index: i,
                        shadowed_by: j,
                    });
                    break;
                }
            }
        }
    }
}

fn field_width(prog: &Program, field: &str) -> u16 {
    let parts: Vec<&str> = field.split('.').collect();
    match parts.as_slice() {
        ["hdr", h, f] => prog
            .headers
            .iter()
            .find(|d| &d.name == h)
            .and_then(|d| d.fields.iter().find(|(n, _)| n == f))
            .map(|(_, w)| *w)
            .unwrap_or(8),
        [b, f] => prog
            .metadatas
            .iter()
            .find(|d| &d.name == b)
            .and_then(|d| d.fields.iter().find(|(n, _)| n == f))
            .map(|(_, w)| *w)
            .unwrap_or(8),
        _ => 8,
    }
}

fn never_valid_headers(prog: &Program, out: &mut Vec<Lint>) {
    let mut can_be_valid: HashSet<&str> = HashSet::new();
    for p in &prog.parsers {
        for s in &p.states {
            for e in &s.extracts {
                can_be_valid.insert(e.as_str());
            }
            if let Transition::Select { .. } | Transition::Goto(_) | Transition::Accept =
                &s.transition
            {}
        }
    }
    for a in &prog.actions {
        for st in &a.body {
            if let crate::ast::ActionStmt::SetValid(h) = st {
                can_be_valid.insert(h.as_str());
            }
        }
    }
    for h in &prog.headers {
        if !can_be_valid.contains(h.name.as_str()) {
            out.push(Lint::NeverValidHeader(h.name.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_program, parse_rules};

    const BASE: &str = r#"
        header pkt { t: 16; }
        header ghost { x: 8; }
        metadata meta { out: 8; drop: 1; }
        parser p { state start { extract(pkt); accept; } }
        parser orphan_parser { state start { accept; } }
        action used(v: 8) { meta.out = v; }
        action orphan_action() { meta.out = 9; }
        action fallback() { }
        table t1 {
          key = { hdr.pkt.t: exact; }
          actions = { used; fallback; }
          default_action = fallback();
        }
        table orphan_table {
          key = { hdr.pkt.t: exact; }
          actions = { used; }
        }
        control c { apply(t1); }
        control orphan_control { apply(orphan_table); }
        pipeline main { parser = p; control = c; }
        deparser { emit(pkt); }
    "#;

    #[test]
    fn finds_unused_declarations() {
        let prog = parse_program(BASE).unwrap();
        let rules = parse_rules("rules t1 { 1 => used(1); }").unwrap();
        let lints = lint(&prog, &rules);
        assert!(lints.contains(&Lint::UnusedAction("orphan_action".into())), "{lints:?}");
        assert!(lints.contains(&Lint::UnusedTable("orphan_table".into())));
        assert!(lints.contains(&Lint::UnusedControl("orphan_control".into())));
        assert!(lints.contains(&Lint::UnusedParser("orphan_parser".into())));
        assert!(lints.contains(&Lint::NeverValidHeader("ghost".into())));
    }

    #[test]
    fn empty_applied_table_is_flagged() {
        let prog = parse_program(BASE).unwrap();
        let lints = lint(&prog, &parse_rules("").unwrap());
        assert!(lints.contains(&Lint::EmptyTable("t1".into())), "{lints:?}");
    }

    #[test]
    fn shadowed_exact_rule_is_dead() {
        let prog = parse_program(BASE).unwrap();
        let rules = parse_rules("rules t1 { 5 => used(1); 5 => used(2); }").unwrap();
        let lints = lint(&prog, &rules);
        assert!(
            lints.contains(&Lint::ShadowedRule {
                table: "t1".into(),
                index: 1,
                shadowed_by: 0
            }),
            "{lints:?}"
        );
    }

    #[test]
    fn ternary_wildcard_shadows_everything_after_it() {
        let src = r#"
            header pkt { t: 16; }
            metadata meta { out: 8; }
            parser p { state start { extract(pkt); accept; } }
            action a(v: 8) { meta.out = v; }
            table acl {
              key = { hdr.pkt.t: ternary; }
              actions = { a; }
            }
            control c { apply(acl); }
            pipeline main { parser = p; control = c; }
        "#;
        let prog = parse_program(src).unwrap();
        let rules = parse_rules("rules acl { _ => a(1); 0x0800 &&& 0xffff => a(2); }").unwrap();
        let lints = lint(&prog, &rules);
        assert!(
            lints.iter().any(|l| matches!(l, Lint::ShadowedRule { index: 1, .. })),
            "{lints:?}"
        );
    }

    #[test]
    fn lpm_shadowing_via_prefix_containment() {
        let src = r#"
            header pkt { d: 32; }
            metadata meta { out: 8; }
            parser p { state start { extract(pkt); accept; } }
            action a(v: 8) { meta.out = v; }
            table route {
              key = { hdr.pkt.d: lpm; }
              actions = { a; }
            }
            control c { apply(route); }
            pipeline main { parser = p; control = c; }
        "#;
        let prog = parse_program(src).unwrap();
        // /8 first shadows the /16 inside it (rule files are priority
        // order in this dialect, so the broad rule wins first).
        let rules = parse_rules("rules route { 10.0.0.0/8 => a(1); 10.1.0.0/16 => a(2); }").unwrap();
        let lints = lint(&prog, &rules);
        assert!(
            lints.iter().any(|l| matches!(l, Lint::ShadowedRule { index: 1, .. })),
            "{lints:?}"
        );
        // The other order is fine: specific first, broad later.
        let rules = parse_rules("rules route { 10.1.0.0/16 => a(2); 10.0.0.0/8 => a(1); }").unwrap();
        let lints = lint(&prog, &rules);
        assert!(!lints.iter().any(|l| matches!(l, Lint::ShadowedRule { .. })));
    }

    #[test]
    fn disjoint_rules_are_not_flagged() {
        let prog = parse_program(BASE).unwrap();
        let rules = parse_rules("rules t1 { 1 => used(1); 2 => used(2); }").unwrap();
        let lints = lint(&prog, &rules);
        assert!(!lints.iter().any(|l| matches!(l, Lint::ShadowedRule { .. })));
    }

    #[test]
    fn display_is_informative() {
        let l = Lint::ShadowedRule {
            table: "acl".into(),
            index: 3,
            shadowed_by: 0,
        };
        let text = l.to_string();
        assert!(text.contains("acl") && text.contains("#3"), "{text}");
    }
}
