//! The Meissa test driver (§4): sender, receiver, and checker.
//!
//! The **sender** instantiates each test case template into a concrete
//! packet (unique id in the payload). The **receiver** captures what the
//! switch under test emits. The **checker** compares the captured packet
//! against the expected one — computed from the program's *source
//! semantics* — and validates the operator's LPI intents, reporting passed
//! and failed cases. A failing case carries a bug-localization trace (§7):
//! the executed statements with concrete values, which engineers review to
//! find the root cause; a divergence from source semantics with a clean
//! trace indicates a *non-code* bug (compiler/backend/toolchain).
//!
//! The checker is transport-agnostic: [`Checker::check_case`] compares an
//! expected [`TargetOutput`] against an [`Observation`] regardless of
//! whether the observation came from an in-process `SwitchTarget::inject`
//! call (this crate's [`TestDriver`]) or from frames on a socket (the
//! `meissa-netdriver` wire driver). [`plan_cases`] is the shared sender:
//! it enumerates the concrete test cases for a run, assigning each the
//! paper's unique packet-ID stamp so receivers can match responses under
//! loss and reordering.

pub mod localize;
pub mod report;

pub use localize::{trace_execution, TraceStep};
pub use report::{CaseResult, SoakStats, TestReport, Verdict};

use meissa_core::stateful::StatefulRunOutput;
use meissa_core::RunOutput;
use meissa_dataplane::{parse_packet, Packet, SwitchTarget, TargetOutput};
use meissa_ir::ConcreteState;
use meissa_lang::CompiledProgram;
use std::time::{Duration, Instant};

/// What a receiver observed for one injected packet, however it observed
/// it. Mirrors [`TargetOutput`] but is constructed by transports: the
/// in-process path converts directly, the wire path reassembles it from
/// `Output` frames (and synthesizes the all-`None` value for cases whose
/// response never arrived — the drain phase classifies those as drops).
#[derive(Clone, Debug)]
pub struct Observation {
    /// The emitted packet, or `None` for a drop (or a lost response).
    pub packet: Option<Packet>,
    /// Logical egress port, when forwarded.
    pub egress_port: Option<meissa_num::Bv>,
    /// The target's final state snapshot (the hardware-model register
    /// dump the checker validates intents against).
    pub final_state: ConcreteState,
}

impl Observation {
    /// The observation for a case whose response never arrived: no packet,
    /// no port, empty state. Intent checks on an empty state see every
    /// field as zero.
    pub fn missing() -> Self {
        Observation {
            packet: None,
            egress_port: None,
            final_state: ConcreteState::new(),
        }
    }
}

impl From<TargetOutput> for Observation {
    fn from(out: TargetOutput) -> Self {
        Observation {
            packet: out.packet,
            egress_port: out.egress_port,
            final_state: out.final_state,
        }
    }
}

/// One planned test case, produced by [`plan_cases`]. The sender half of
/// the driver: transports consume this list, serialize the inputs, and
/// deliver them however they deliver things.
#[derive(Clone, Debug)]
pub enum CaseSpec {
    /// The template could not be instantiated; the report records why.
    Skip {
        /// Originating template.
        template_id: usize,
        /// Why no packet exists.
        reason: String,
    },
    /// A concrete input to inject.
    Case {
        /// Originating template.
        template_id: usize,
        /// Globally unique packet-ID stamp (§4) — the last 8 payload bytes.
        /// Receivers match responses to cases by this id, which is what
        /// makes the checker robust to duplication and reordering.
        wire_id: u64,
        /// The concrete input state.
        input: ConcreteState,
    },
}

impl CaseSpec {
    /// The template this case came from.
    pub fn template_id(&self) -> usize {
        match self {
            CaseSpec::Skip { template_id, .. } | CaseSpec::Case { template_id, .. } => {
                *template_id
            }
        }
    }
}

/// Enumerates every concrete test case for `run`: `packets_per_template`
/// distinct instantiations per template, plus one instantiation per intent
/// with the intent's `given` clause as an extra constraint (the §6
/// deployment workflow where "network engineers specify test-case-specific
/// constraints"). Each case gets a globally unique `wire_id` (1-based,
/// in plan order).
pub fn plan_cases(
    program: &CompiledProgram,
    run: &mut RunOutput,
    packets_per_template: usize,
) -> Vec<CaseSpec> {
    let mut ctx = meissa_core::symstate::SymCtx::new(None);
    let v0 = meissa_core::symstate::ValueStack::new();
    let givens: Vec<meissa_smt::TermId> = program
        .intents
        .iter()
        .map(|i| ctx.bexp(&mut run.pool, &run.cfg.fields, &v0, &i.given))
        .collect();
    let mut cases = Vec::new();
    let mut next_id: u64 = 1;
    for idx in 0..run.templates.len() {
        let template_id = run.templates[idx].id;
        let inputs = run.templates[idx].clone().instantiate_distinct(
            &mut run.pool,
            &run.cfg.fields,
            packets_per_template,
        );
        if inputs.is_empty() {
            cases.push(CaseSpec::Skip {
                template_id,
                reason: "template unsatisfiable at instantiation (hash filter)".into(),
            });
        }
        for input in inputs {
            cases.push(CaseSpec::Case {
                template_id,
                wire_id: next_id,
                input,
            });
            next_id += 1;
        }
        for &g in &givens {
            if let Some(input) =
                run.templates[idx].instantiate(&mut run.pool, &run.cfg.fields, &[g])
            {
                cases.push(CaseSpec::Case {
                    template_id,
                    wire_id: next_id,
                    input,
                });
                next_id += 1;
            }
        }
    }
    cases
}

/// One planned k-packet sequence case. The ordered counterpart of
/// [`CaseSpec`]: transports must deliver the packets *in order* against a
/// single register file (in-process via `SwitchTarget::inject_sequence`,
/// on the wire via the agent's atomic sequence-injection frame).
#[derive(Clone, Debug)]
pub enum SeqCaseSpec {
    /// The sequence template could not be instantiated.
    Skip {
        /// Originating sequence template.
        sequence_id: usize,
        /// Why no case exists.
        reason: String,
    },
    /// A concrete ordered sequence to inject.
    Case {
        /// Originating sequence template.
        sequence_id: usize,
        /// One globally unique packet-ID stamp per packet, in order.
        wire_ids: Vec<u64>,
        /// Per-packet inputs plus the initial register seed.
        case: meissa_core::SequenceCase,
    },
}

/// Enumerates every concrete sequence case for a stateful run: one
/// instantiation per sequence template, each packet stamped with a globally
/// unique `wire_id` (1-based, in plan order — packet *j* of an earlier
/// sequence always has a smaller id than any packet of a later one).
pub fn plan_sequence_cases(run: &mut StatefulRunOutput) -> Vec<SeqCaseSpec> {
    let mut cases = Vec::new();
    let mut next_id: u64 = 1;
    for idx in 0..run.sequences.len() {
        let sequence_id = run.sequences[idx].id;
        match run.instantiate(idx) {
            Some(case) => {
                let wire_ids: Vec<u64> = (0..case.packets.len() as u64)
                    .map(|j| next_id + j)
                    .collect();
                next_id += case.packets.len() as u64;
                cases.push(SeqCaseSpec::Case {
                    sequence_id,
                    wire_ids,
                    case,
                });
            }
            None => cases.push(SeqCaseSpec::Skip {
                sequence_id,
                reason: "sequence template unsatisfiable at instantiation (hash filter)".into(),
            }),
        }
    }
    cases
}

/// The transport-agnostic checker: given what the reference says should
/// happen and what some transport observed, produce the verdict. Shared
/// verbatim by the in-process and wire drivers, so both classify every
/// `dataplane::Fault` identically.
pub struct Checker<'p> {
    program: &'p CompiledProgram,
    structural_checks: bool,
}

impl<'p> Checker<'p> {
    /// A checker with the full Meissa validation (§4: the checker
    /// "validates packet checksums" and structure).
    pub fn new(program: &'p CompiledProgram) -> Self {
        Checker {
            program,
            structural_checks: true,
        }
    }

    /// A checker that only diffs packets, modeling baseline testers.
    pub fn without_structural_checks(program: &'p CompiledProgram) -> Self {
        Checker {
            program,
            structural_checks: false,
        }
    }

    /// Checks one observed case against the reference output. `packet` is
    /// the injected packet (for the localization trace on failure).
    pub fn check_case(
        &self,
        template_id: usize,
        input: &ConcreteState,
        packet: &Packet,
        expected: &TargetOutput,
        actual: &Observation,
    ) -> CaseResult {
        let trace = || {
            parse_packet(self.program, packet)
                .map(|st| trace_execution(self.program, &st))
                .unwrap_or_default()
        };

        // Checker step 0: structural validation (§4: the checker validates
        // packet structure/checksums, not just intent clauses). A header
        // the program leaves valid must be on the deparser's emit list —
        // catching wrong-deparser-emit code bugs.
        if self.structural_checks && expected.packet.is_some() {
            let fields = &self.program.cfg.fields;
            for layout in &self.program.headers {
                let valid = !expected.final_state.get(fields, layout.valid).is_zero();
                if valid && !self.program.deparse_order.contains(&layout.name) {
                    return CaseResult::new(
                        template_id,
                        Verdict::OutputMismatch {
                            detail: format!("deparser omits valid header `{}`", layout.name),
                        },
                        trace(),
                    );
                }
            }
        }

        // Checker step 1: presence (absent packets are first-class — §4
        // "or mark as absent").
        let verdict = match (&expected.packet, &actual.packet) {
            (Some(e), Some(a)) => {
                if e.bytes != a.bytes {
                    Verdict::OutputMismatch {
                        detail: format!(
                            "output differs: expected {} bytes, got {} bytes{}",
                            e.len(),
                            a.len(),
                            first_diff(&e.bytes, &a.bytes)
                                .map(|i| format!(", first difference at byte {i}"))
                                .unwrap_or_default()
                        ),
                    }
                } else if expected.egress_port != actual.egress_port {
                    Verdict::OutputMismatch {
                        detail: format!(
                            "egress port differs: expected {:?}, got {:?}",
                            expected.egress_port, actual.egress_port
                        ),
                    }
                } else {
                    self.check_intents(input, &actual.final_state)
                }
            }
            (Some(_), None) => Verdict::OutputMismatch {
                detail: "expected a forwarded packet, got none".into(),
            },
            (None, Some(_)) => Verdict::OutputMismatch {
                detail: "expected a drop, got a forwarded packet".into(),
            },
            (None, None) => self.check_intents(input, &actual.final_state),
        };

        let trace = if matches!(verdict, Verdict::Pass) {
            Vec::new()
        } else {
            trace()
        };
        CaseResult::new(template_id, verdict, trace)
    }

    /// Checker step 2: LPI intents. An intent applies when its `given`
    /// clause holds on the input; its `expect` clause must then hold on the
    /// final state the target produced.
    fn check_intents(&self, input: &ConcreteState, actual_final: &ConcreteState) -> Verdict {
        let fields = &self.program.cfg.fields;
        for intent in &self.program.intents {
            if input.eval_bexp(fields, &intent.given)
                && !actual_final.eval_bexp(fields, &intent.expect)
            {
                return Verdict::IntentViolation {
                    intent: intent.name.clone(),
                };
            }
        }
        Verdict::Pass
    }
}

/// The in-process test driver for one program: sender, receiver, and
/// checker wired directly to `SwitchTarget::inject` calls.
pub struct TestDriver<'p> {
    program: &'p CompiledProgram,
    /// The reference implementation: a faithful execution of source
    /// semantics, used to compute expected outputs.
    reference: SwitchTarget,
    /// The shared transport-agnostic checker.
    checker: Checker<'p>,
    /// How many distinct packets to generate per template ("One or more
    /// input-output test cases can be generated based on the template",
    /// §2.1).
    packets_per_template: usize,
}

impl<'p> TestDriver<'p> {
    /// Creates a driver for a program.
    pub fn new(program: &'p CompiledProgram) -> Self {
        TestDriver {
            program,
            reference: SwitchTarget::new(program),
            checker: Checker::new(program),
            packets_per_template: 1,
        }
    }

    /// Sets how many distinct packets each template is instantiated into.
    pub fn with_packets_per_template(mut self, n: usize) -> Self {
        self.packets_per_template = n.max(1);
        self
    }

    /// A driver without the structural packet validation, for modeling
    /// baseline testers whose checkers only diff packets.
    pub fn without_structural_checks(program: &'p CompiledProgram) -> Self {
        TestDriver {
            checker: Checker::without_structural_checks(program),
            ..Self::new(program)
        }
    }

    /// Runs every template in `run` against `target` and checks results.
    ///
    /// Besides one packet per template, the driver instantiates each
    /// template once per intent with the intent's `given` clause as an
    /// extra constraint — the §6 deployment workflow where "network
    /// engineers specify test-case-specific constraints" on top of Meissa's
    /// base constraints. This also yields deterministic boundary-value
    /// packets when a `given` pins a boundary (e.g. `src_port == 1024`).
    pub fn run(&self, run: &mut RunOutput, target: &SwitchTarget) -> TestReport {
        let started = Instant::now();
        let mut report = TestReport::new(target.fault().name());
        for spec in plan_cases(self.program, run, self.packets_per_template) {
            match spec {
                CaseSpec::Skip {
                    template_id,
                    reason,
                } => report.push(CaseResult::new(
                    template_id,
                    Verdict::Skipped { reason },
                    Vec::new(),
                )),
                CaseSpec::Case {
                    template_id,
                    wire_id,
                    input,
                } => report.push(self.check_with_id(target, template_id, wire_id, &input)),
            }
        }
        report.elapsed = started.elapsed();
        report
    }

    /// Runs a single template (first packet only; `run` generates
    /// `packets_per_template` variants).
    pub fn run_case(&self, run: &mut RunOutput, target: &SwitchTarget, idx: usize) -> CaseResult {
        let template_id = run.templates[idx].id;
        // Sender: instantiate the template into a concrete input.
        let Some(input) = run.templates[idx].instantiate(&mut run.pool, &run.cfg.fields, &[])
        else {
            return CaseResult::new(
                template_id,
                Verdict::Skipped {
                    reason: "template unsatisfiable at instantiation (hash filter)".into(),
                },
                Vec::new(),
            );
        };
        self.check_input(target, template_id, &input)
    }

    /// Sends one concrete input through both the reference and the target,
    /// then checks packets and intents. Stamps the packet with
    /// `template_id + 1` — unique per template, matching single-case use.
    pub fn check_input(
        &self,
        target: &SwitchTarget,
        template_id: usize,
        input: &ConcreteState,
    ) -> CaseResult {
        self.check_with_id(target, template_id, template_id as u64 + 1, input)
    }

    fn check_with_id(
        &self,
        target: &SwitchTarget,
        template_id: usize,
        wire_id: u64,
        input: &ConcreteState,
    ) -> CaseResult {
        // Sender: materialize the packet (prebuilt parser plan — this is
        // the per-case hot path).
        let fields = &self.program.cfg.fields;
        let Ok(packet) = self.reference.plan().serialize_state(fields, input, wire_id) else {
            return CaseResult::new(
                template_id,
                Verdict::Skipped {
                    reason: "program has no entry parser; cannot serialize".into(),
                },
                Vec::new(),
            );
        };

        // Expected behaviour: the faithful reference.
        let expected = self.reference.inject(&packet);
        // Actual behaviour: the implementation under test — the latency
        // window spans injection through verdict, mirroring what the wire
        // driver measures send → matched response.
        let injected = Instant::now();
        let actual: Observation = target.inject(&packet).into();
        let mut result =
            self.checker
                .check_case(template_id, input, &packet, &expected, &actual);
        result.latency = injected.elapsed().max(Duration::from_nanos(1));
        result
    }

    /// Runs every sequence template in `run` against `target`, in order,
    /// and checks each packet's output at its position. Both the reference
    /// and the target thread a register file across each sequence (fresh
    /// per sequence, seeded from the case's `initial_registers`), so a
    /// state-dependent divergence on packet *i* is attributed to the
    /// sequence that provoked it.
    pub fn run_sequences(&self, run: &mut StatefulRunOutput, target: &SwitchTarget) -> TestReport {
        let started = Instant::now();
        let mut report = TestReport::new(target.fault().name());
        for spec in plan_sequence_cases(run) {
            match spec {
                SeqCaseSpec::Skip {
                    sequence_id,
                    reason,
                } => report.push(CaseResult::new(
                    sequence_id,
                    Verdict::Skipped { reason },
                    Vec::new(),
                )),
                SeqCaseSpec::Case {
                    sequence_id,
                    wire_ids,
                    case,
                } => {
                    for r in self.check_sequence(target, sequence_id, &wire_ids, &case) {
                        report.push(r);
                    }
                }
            }
        }
        report.elapsed = started.elapsed();
        report
    }

    /// Sends one concrete sequence through both the reference and the
    /// target and checks every position. Produces one [`CaseResult`] per
    /// packet (all carrying the sequence's template id).
    pub fn check_sequence(
        &self,
        target: &SwitchTarget,
        sequence_id: usize,
        wire_ids: &[u64],
        case: &meissa_core::SequenceCase,
    ) -> Vec<CaseResult> {
        let mut packets = Vec::with_capacity(case.packets.len());
        for (input, &wid) in case.packets.iter().zip(wire_ids) {
            match self.reference.plan().serialize_state(&self.program.cfg.fields, input, wid) {
                Ok(p) => packets.push(p),
                Err(e) => {
                    return vec![CaseResult::new(
                        sequence_id,
                        Verdict::Skipped {
                            reason: format!("cannot serialize sequence packet: {e}"),
                        },
                        Vec::new(),
                    )]
                }
            }
        }
        let expected = self.reference.inject_sequence(&packets, &case.initial_registers);
        let injected = Instant::now();
        let actual = target.inject_sequence(&packets, &case.initial_registers);
        let latency = injected.elapsed().max(Duration::from_nanos(1));
        let mut results = Vec::with_capacity(packets.len());
        for (i, packet) in packets.iter().enumerate() {
            let obs: Observation = actual[i].clone().into();
            let mut r = self.checker.check_case(
                sequence_id,
                &case.packets[i],
                packet,
                &expected[i],
                &obs,
            );
            r.latency = latency;
            results.push(r);
        }
        results
    }
}

/// Computes the expected (reference) output for a planned case. Shared by
/// transports that evaluate the reference client-side while the target
/// runs remotely.
pub fn expected_output(
    reference: &SwitchTarget,
    packet: &Packet,
) -> TargetOutput {
    reference.inject(packet)
}

fn first_diff(a: &[u8], b: &[u8]) -> Option<usize> {
    a.iter().zip(b).position(|(x, y)| x != y).or({
        if a.len() != b.len() {
            Some(a.len().min(b.len()))
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use meissa_core::Meissa;
    use meissa_dataplane::Fault;
    use meissa_lang::{compile, parse_program, parse_rules};

    const PROGRAM: &str = r#"
        header ethernet { dst: 48; src: 48; ether_type: 16; }
        header ipv4 { ttl: 8; protocol: 8; src_addr: 32; dst_addr: 32; checksum: 16; }
        header vxlan { vni: 24; }
        metadata meta { egress_port: 9; drop: 1; }
        parser main {
          state start {
            extract(ethernet);
            select (hdr.ethernet.ether_type) { 0x0800 => parse_ipv4; default => accept; }
          }
          state parse_ipv4 { extract(ipv4); accept; }
        }
        action set_port(port: 9) { meta.egress_port = port; }
        action encap(vni: 24) {
          hdr.vxlan.setValid();
          hdr.vxlan.vni = vni;
          hdr.ipv4.checksum = hash(csum16, 16, hdr.ipv4.src_addr, hdr.ipv4.dst_addr);
        }
        action drop_() { meta.drop = 1; }
        table route {
          key = { hdr.ipv4.dst_addr: lpm; }
          actions = { set_port; drop_; }
          default_action = drop_();
        }
        control ig {
          if (hdr.ipv4.isValid()) {
            apply(route);
            if (meta.drop == 0) { call encap(7); }
          }
        }
        pipeline ingress0 { parser = main; control = ig; }
        deparser { emit(ethernet); emit(ipv4); emit(vxlan); }
        intent routed_packets_get_tunneled {
          given hdr.ethernet.ether_type == 0x0800;
          expect meta.drop == 1 || hdr.vxlan.$valid == 1;
        }
    "#;

    const RULES: &str = "rules route { 10.0.0.0/8 => set_port(3); }";

    fn program() -> CompiledProgram {
        let p = parse_program(PROGRAM).unwrap();
        compile(&p, &parse_rules(RULES).unwrap()).unwrap()
    }

    #[test]
    fn faithful_target_passes_all_cases() {
        let cp = program();
        let mut run = Meissa::new().run(&cp);
        assert!(!run.templates.is_empty());
        let driver = TestDriver::new(&cp);
        let target = SwitchTarget::new(&cp);
        let report = driver.run(&mut run, &target);
        assert_eq!(report.failed(), 0, "{report}");
        assert!(report.passed() >= 3, "{report}");
    }

    #[test]
    fn setvalid_fault_is_detected_with_trace() {
        let cp = program();
        let mut run = Meissa::new().run(&cp);
        let driver = TestDriver::new(&cp);
        let target = SwitchTarget::with_fault(
            &cp,
            Fault::SetValidDropped {
                header: "vxlan".into(),
            },
        );
        let report = driver.run(&mut run, &target);
        assert!(report.failed() > 0, "setValid bug must be caught");
        let failure = report
            .cases
            .iter()
            .find(|c| !matches!(c.verdict, Verdict::Pass | Verdict::Skipped { .. }))
            .unwrap();
        assert!(!failure.trace.is_empty(), "failures carry a trace");
    }

    #[test]
    fn checksum_fault_detected() {
        let cp = program();
        let mut run = Meissa::new().run(&cp);
        let driver = TestDriver::new(&cp);
        let target = SwitchTarget::with_fault(&cp, Fault::ChecksumNotUpdated);
        let report = driver.run(&mut run, &target);
        assert!(report.failed() > 0, "{report}");
    }

    #[test]
    fn report_is_printable() {
        let cp = program();
        let mut run = Meissa::new().run(&cp);
        let driver = TestDriver::new(&cp);
        let report = driver.run(&mut run, &SwitchTarget::new(&cp));
        let text = report.to_string();
        assert!(text.contains("passed"), "{text}");
    }

    #[test]
    fn intent_violation_detected_on_code_bug() {
        // A *code* bug: the program forgets to encap (violates the intent on
        // the faithful target). Testing flags it via the intent check.
        let buggy_src = PROGRAM.replace("{ call encap(7); }", "{ }");
        let p = parse_program(&buggy_src).unwrap();
        let cp = compile(&p, &parse_rules(RULES).unwrap()).unwrap();
        let mut run = Meissa::new().run(&cp);
        let driver = TestDriver::new(&cp);
        let report = driver.run(&mut run, &SwitchTarget::new(&cp));
        assert!(
            report
                .cases
                .iter()
                .any(|c| matches!(&c.verdict, Verdict::IntentViolation { intent }
                    if intent == "routed_packets_get_tunneled")),
            "{report}"
        );
    }

    #[test]
    fn run_records_latency_and_elapsed() {
        let cp = program();
        let mut run = Meissa::new().run(&cp);
        let report = TestDriver::new(&cp).run(&mut run, &SwitchTarget::new(&cp));
        assert!(!report.elapsed.is_zero());
        assert!(report.latency_p50().is_some());
        assert!(report.latency_p99().is_some());
        assert!(report
            .cases
            .iter()
            .filter(|c| !matches!(c.verdict, Verdict::Skipped { .. }))
            .all(|c| !c.latency.is_zero()));
        assert!(report.cases_per_sec().unwrap() > 0.0);
    }

    #[test]
    fn plan_cases_assigns_unique_wire_ids() {
        let cp = program();
        let mut run = Meissa::new().run(&cp);
        let cases = plan_cases(&cp, &mut run, 2);
        let ids: Vec<u64> = cases
            .iter()
            .filter_map(|c| match c {
                CaseSpec::Case { wire_id, .. } => Some(*wire_id),
                CaseSpec::Skip { .. } => None,
            })
            .collect();
        assert!(!ids.is_empty());
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "wire ids must be unique");
        // Plan order is deterministic: ids are assigned 1..=n in order.
        assert_eq!(ids, (1..=ids.len() as u64).collect::<Vec<_>>());
    }
}

#[cfg(test)]
mod multi_packet_tests {
    use super::*;
    use meissa_core::Meissa;
    use meissa_lang::{compile, parse_program, parse_rules};

    #[test]
    fn multiple_packets_per_template_multiply_cases() {
        let src = r#"
            header pkt { d: 32; }
            metadata meta { out: 9; drop: 1; }
            parser p { state start { extract(pkt); accept; } }
            action fwd(v: 9) { meta.out = v; }
            action drop_() { meta.drop = 1; }
            table t {
              key = { hdr.pkt.d: lpm; }
              actions = { fwd; drop_; }
              default_action = drop_();
            }
            control c { apply(t); }
            pipeline main { parser = p; control = c; }
            deparser { emit(pkt); }
        "#;
        let rules = "rules t { 10.0.0.0/8 => fwd(1); }";
        let program =
            compile(&parse_program(src).unwrap(), &parse_rules(rules).unwrap()).unwrap();
        let mut run = Meissa::new().run(&program);
        let single = TestDriver::new(&program)
            .run(&mut run, &SwitchTarget::new(&program))
            .cases
            .len();
        let mut run = Meissa::new().run(&program);
        let multi = TestDriver::new(&program)
            .with_packets_per_template(4)
            .run(&mut run, &SwitchTarget::new(&program))
            .cases
            .len();
        assert!(multi > single, "{multi} vs {single}");
        // And everything still passes on the faithful target.
        let mut run = Meissa::new().run(&program);
        let report = TestDriver::new(&program)
            .with_packets_per_template(4)
            .run(&mut run, &SwitchTarget::new(&program));
        assert_eq!(report.failed(), 0, "{report}");
    }
}
