//! The Meissa test driver (§4): sender, receiver, and checker.
//!
//! The **sender** instantiates each test case template into a concrete
//! packet (unique id in the payload). The **receiver** captures what the
//! switch under test emits. The **checker** compares the captured packet
//! against the expected one — computed from the program's *source
//! semantics* — and validates the operator's LPI intents, reporting passed
//! and failed cases. A failing case carries a bug-localization trace (§7):
//! the executed statements with concrete values, which engineers review to
//! find the root cause; a divergence from source semantics with a clean
//! trace indicates a *non-code* bug (compiler/backend/toolchain).

pub mod localize;
pub mod report;

pub use localize::{trace_execution, TraceStep};
pub use report::{CaseResult, TestReport, Verdict};

use meissa_core::RunOutput;
use meissa_dataplane::{parse_packet, serialize_state, SwitchTarget};
use meissa_ir::ConcreteState;
use meissa_lang::CompiledProgram;

/// The test driver for one program.
pub struct TestDriver<'p> {
    program: &'p CompiledProgram,
    /// The reference implementation: a faithful execution of source
    /// semantics, used to compute expected outputs.
    reference: SwitchTarget,
    /// Run the packet-structure validation (§4: the checker "validates
    /// packet checksums" and structure). Meissa's checker has it; the
    /// testing baselines do not.
    structural_checks: bool,
    /// How many distinct packets to generate per template ("One or more
    /// input-output test cases can be generated based on the template",
    /// §2.1).
    packets_per_template: usize,
}

impl<'p> TestDriver<'p> {
    /// Creates a driver for a program.
    pub fn new(program: &'p CompiledProgram) -> Self {
        TestDriver {
            program,
            reference: SwitchTarget::new(program),
            structural_checks: true,
            packets_per_template: 1,
        }
    }

    /// Sets how many distinct packets each template is instantiated into.
    pub fn with_packets_per_template(mut self, n: usize) -> Self {
        self.packets_per_template = n.max(1);
        self
    }

    /// A driver without the structural packet validation, for modeling
    /// baseline testers whose checkers only diff packets.
    pub fn without_structural_checks(program: &'p CompiledProgram) -> Self {
        TestDriver {
            structural_checks: false,
            ..Self::new(program)
        }
    }

    /// Runs every template in `run` against `target` and checks results.
    ///
    /// Besides one packet per template, the driver instantiates each
    /// template once per intent with the intent's `given` clause as an
    /// extra constraint — the §6 deployment workflow where "network
    /// engineers specify test-case-specific constraints" on top of Meissa's
    /// base constraints. This also yields deterministic boundary-value
    /// packets when a `given` pins a boundary (e.g. `src_port == 1024`).
    pub fn run(&self, run: &mut RunOutput, target: &SwitchTarget) -> TestReport {
        let mut report = TestReport::new(target.fault().name());
        let mut ctx = meissa_core::symstate::SymCtx::new(None);
        let v0 = meissa_core::symstate::ValueStack::new();
        let givens: Vec<meissa_smt::TermId> = self
            .program
            .intents
            .iter()
            .map(|i| ctx.bexp(&mut run.pool, &run.cfg.fields, &v0, &i.given))
            .collect();
        for idx in 0..run.templates.len() {
            let id = run.templates[idx].id;
            let inputs = run.templates[idx].clone().instantiate_distinct(
                &mut run.pool,
                &run.cfg.fields,
                self.packets_per_template,
            );
            if inputs.is_empty() {
                report.push(CaseResult {
                    template_id: id,
                    verdict: Verdict::Skipped {
                        reason: "template unsatisfiable at instantiation (hash filter)".into(),
                    },
                    trace: Vec::new(),
                });
            }
            for input in &inputs {
                report.push(self.check_input(target, id, input));
            }
            for &g in &givens {
                let id = run.templates[idx].id;
                if let Some(input) =
                    run.templates[idx].instantiate(&mut run.pool, &run.cfg.fields, &[g])
                {
                    report.push(self.check_input(target, id, &input));
                }
            }
        }
        report
    }

    /// Runs a single template (first packet only; `run` generates
    /// `packets_per_template` variants).
    pub fn run_case(&self, run: &mut RunOutput, target: &SwitchTarget, idx: usize) -> CaseResult {
        let template_id = run.templates[idx].id;
        // Sender: instantiate the template into a concrete input.
        let Some(input) = run.templates[idx].instantiate(&mut run.pool, &run.cfg.fields, &[])
        else {
            return CaseResult {
                template_id,
                verdict: Verdict::Skipped {
                    reason: "template unsatisfiable at instantiation (hash filter)".into(),
                },
                trace: Vec::new(),
            };
        };
        self.check_input(target, template_id, &input)
    }

    /// Sends one concrete input through both the reference and the target,
    /// then checks packets and intents.
    pub fn check_input(
        &self,
        target: &SwitchTarget,
        template_id: usize,
        input: &ConcreteState,
    ) -> CaseResult {
        let id = template_id as u64 + 1;

        // Sender: materialize the packet.
        let Some(packet) = serialize_state(self.program, input, id) else {
            return CaseResult {
                template_id,
                verdict: Verdict::Skipped {
                    reason: "program has no entry parser; cannot serialize".into(),
                },
                trace: Vec::new(),
            };
        };

        // Expected behaviour: the faithful reference.
        let expected = self.reference.inject(&packet);
        // Actual behaviour: the implementation under test.
        let actual = target.inject(&packet);

        let trace = || {
            parse_packet(self.program, &packet)
                .map(|st| trace_execution(self.program, &st))
                .unwrap_or_default()
        };

        // Checker step 0: structural validation (§4: the checker validates
        // packet structure/checksums, not just intent clauses). A header
        // the program leaves valid must be on the deparser's emit list —
        // catching wrong-deparser-emit code bugs.
        if self.structural_checks && expected.packet.is_some() {
            let fields = &self.program.cfg.fields;
            for layout in &self.program.headers {
                let valid = !expected.final_state.get(fields, layout.valid).is_zero();
                if valid && !self.program.deparse_order.contains(&layout.name) {
                    return CaseResult {
                        template_id,
                        verdict: Verdict::OutputMismatch {
                            detail: format!(
                                "deparser omits valid header `{}`",
                                layout.name
                            ),
                        },
                        trace: trace(),
                    };
                }
            }
        }

        // Checker step 1: presence (absent packets are first-class — §4
        // "or mark as absent").
        let verdict = match (&expected.packet, &actual.packet) {
            (Some(e), Some(a)) => {
                if e.bytes != a.bytes {
                    Verdict::OutputMismatch {
                        detail: format!(
                            "output differs: expected {} bytes, got {} bytes{}",
                            e.len(),
                            a.len(),
                            first_diff(&e.bytes, &a.bytes)
                                .map(|i| format!(", first difference at byte {i}"))
                                .unwrap_or_default()
                        ),
                    }
                } else if expected.egress_port != actual.egress_port {
                    Verdict::OutputMismatch {
                        detail: format!(
                            "egress port differs: expected {:?}, got {:?}",
                            expected.egress_port, actual.egress_port
                        ),
                    }
                } else {
                    self.check_intents(input, &actual.final_state)
                }
            }
            (Some(_), None) => Verdict::OutputMismatch {
                detail: "expected a forwarded packet, got none".into(),
            },
            (None, Some(_)) => Verdict::OutputMismatch {
                detail: "expected a drop, got a forwarded packet".into(),
            },
            (None, None) => self.check_intents(input, &actual.final_state),
        };

        let trace = if matches!(verdict, Verdict::Pass) {
            Vec::new()
        } else {
            trace()
        };
        CaseResult {
            template_id,
            verdict,
            trace,
        }
    }

    /// Checker step 2: LPI intents. An intent applies when its `given`
    /// clause holds on the input; its `expect` clause must then hold on the
    /// final state the target produced.
    fn check_intents(&self, input: &ConcreteState, actual_final: &ConcreteState) -> Verdict {
        let fields = &self.program.cfg.fields;
        for intent in &self.program.intents {
            if input.eval_bexp(fields, &intent.given)
                && !actual_final.eval_bexp(fields, &intent.expect)
            {
                return Verdict::IntentViolation {
                    intent: intent.name.clone(),
                };
            }
        }
        Verdict::Pass
    }
}

fn first_diff(a: &[u8], b: &[u8]) -> Option<usize> {
    a.iter().zip(b).position(|(x, y)| x != y).or({
        if a.len() != b.len() {
            Some(a.len().min(b.len()))
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use meissa_core::Meissa;
    use meissa_dataplane::Fault;
    use meissa_lang::{compile, parse_program, parse_rules};

    const PROGRAM: &str = r#"
        header ethernet { dst: 48; src: 48; ether_type: 16; }
        header ipv4 { ttl: 8; protocol: 8; src_addr: 32; dst_addr: 32; checksum: 16; }
        header vxlan { vni: 24; }
        metadata meta { egress_port: 9; drop: 1; }
        parser main {
          state start {
            extract(ethernet);
            select (hdr.ethernet.ether_type) { 0x0800 => parse_ipv4; default => accept; }
          }
          state parse_ipv4 { extract(ipv4); accept; }
        }
        action set_port(port: 9) { meta.egress_port = port; }
        action encap(vni: 24) {
          hdr.vxlan.setValid();
          hdr.vxlan.vni = vni;
          hdr.ipv4.checksum = hash(csum16, 16, hdr.ipv4.src_addr, hdr.ipv4.dst_addr);
        }
        action drop_() { meta.drop = 1; }
        table route {
          key = { hdr.ipv4.dst_addr: lpm; }
          actions = { set_port; drop_; }
          default_action = drop_();
        }
        control ig {
          if (hdr.ipv4.isValid()) {
            apply(route);
            if (meta.drop == 0) { call encap(7); }
          }
        }
        pipeline ingress0 { parser = main; control = ig; }
        deparser { emit(ethernet); emit(ipv4); emit(vxlan); }
        intent routed_packets_get_tunneled {
          given hdr.ethernet.ether_type == 0x0800;
          expect meta.drop == 1 || hdr.vxlan.$valid == 1;
        }
    "#;

    const RULES: &str = "rules route { 10.0.0.0/8 => set_port(3); }";

    fn program() -> CompiledProgram {
        let p = parse_program(PROGRAM).unwrap();
        compile(&p, &parse_rules(RULES).unwrap()).unwrap()
    }

    #[test]
    fn faithful_target_passes_all_cases() {
        let cp = program();
        let mut run = Meissa::new().run(&cp);
        assert!(!run.templates.is_empty());
        let driver = TestDriver::new(&cp);
        let target = SwitchTarget::new(&cp);
        let report = driver.run(&mut run, &target);
        assert_eq!(report.failed(), 0, "{report}");
        assert!(report.passed() >= 3, "{report}");
    }

    #[test]
    fn setvalid_fault_is_detected_with_trace() {
        let cp = program();
        let mut run = Meissa::new().run(&cp);
        let driver = TestDriver::new(&cp);
        let target = SwitchTarget::with_fault(
            &cp,
            Fault::SetValidDropped {
                header: "vxlan".into(),
            },
        );
        let report = driver.run(&mut run, &target);
        assert!(report.failed() > 0, "setValid bug must be caught");
        let failure = report
            .cases
            .iter()
            .find(|c| !matches!(c.verdict, Verdict::Pass | Verdict::Skipped { .. }))
            .unwrap();
        assert!(!failure.trace.is_empty(), "failures carry a trace");
    }

    #[test]
    fn checksum_fault_detected() {
        let cp = program();
        let mut run = Meissa::new().run(&cp);
        let driver = TestDriver::new(&cp);
        let target = SwitchTarget::with_fault(&cp, Fault::ChecksumNotUpdated);
        let report = driver.run(&mut run, &target);
        assert!(report.failed() > 0, "{report}");
    }

    #[test]
    fn report_is_printable() {
        let cp = program();
        let mut run = Meissa::new().run(&cp);
        let driver = TestDriver::new(&cp);
        let report = driver.run(&mut run, &SwitchTarget::new(&cp));
        let text = report.to_string();
        assert!(text.contains("passed"), "{text}");
    }

    #[test]
    fn intent_violation_detected_on_code_bug() {
        // A *code* bug: the program forgets to encap (violates the intent on
        // the faithful target). Testing flags it via the intent check.
        let buggy_src = PROGRAM.replace("{ call encap(7); }", "{ }");
        let p = parse_program(&buggy_src).unwrap();
        let cp = compile(&p, &parse_rules(RULES).unwrap()).unwrap();
        let mut run = Meissa::new().run(&cp);
        let driver = TestDriver::new(&cp);
        let report = driver.run(&mut run, &SwitchTarget::new(&cp));
        assert!(
            report
                .cases
                .iter()
                .any(|c| matches!(&c.verdict, Verdict::IntentViolation { intent }
                    if intent == "routed_packets_get_tunneled")),
            "{report}"
        );
    }
}

#[cfg(test)]
mod multi_packet_tests {
    use super::*;
    use meissa_core::Meissa;
    use meissa_lang::{compile, parse_program, parse_rules};

    #[test]
    fn multiple_packets_per_template_multiply_cases() {
        let src = r#"
            header pkt { d: 32; }
            metadata meta { out: 9; drop: 1; }
            parser p { state start { extract(pkt); accept; } }
            action fwd(v: 9) { meta.out = v; }
            action drop_() { meta.drop = 1; }
            table t {
              key = { hdr.pkt.d: lpm; }
              actions = { fwd; drop_; }
              default_action = drop_();
            }
            control c { apply(t); }
            pipeline main { parser = p; control = c; }
            deparser { emit(pkt); }
        "#;
        let rules = "rules t { 10.0.0.0/8 => fwd(1); }";
        let program =
            compile(&parse_program(src).unwrap(), &parse_rules(rules).unwrap()).unwrap();
        let mut run = Meissa::new().run(&program);
        let single = TestDriver::new(&program)
            .run(&mut run, &SwitchTarget::new(&program))
            .cases
            .len();
        let mut run = Meissa::new().run(&program);
        let multi = TestDriver::new(&program)
            .with_packets_per_template(4)
            .run(&mut run, &SwitchTarget::new(&program))
            .cases
            .len();
        assert!(multi > single, "{multi} vs {single}");
        // And everything still passes on the faithful target.
        let mut run = Meissa::new().run(&program);
        let report = TestDriver::new(&program)
            .with_packets_per_template(4)
            .run(&mut run, &SwitchTarget::new(&program));
        assert_eq!(report.failed(), 0, "{report}");
    }
}
