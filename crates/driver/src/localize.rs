//! Bug localization (§7): replay a failing input over source semantics and
//! record every executed statement with its concrete values.
//!
//! "Meissa symbolically executes this concrete input and generates a trace
//! that shows all executed actions, hit table rules, branching, and
//! assignment statements, along with the values of corresponding arguments
//! at each statement." Engineers read this trace to find code bugs; when
//! the trace is clean but the hardware output diverges, the bug is in the
//! toolchain (compiler / pragmas / flags).

use meissa_ir::{ConcreteState, NodeId, Stmt};
use meissa_lang::CompiledProgram;
use std::fmt;

/// One executed statement in a localization trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStep {
    /// The CFG node executed.
    pub node: NodeId,
    /// Rendered statement.
    pub stmt: String,
    /// For assignments, the concrete value written (rendered).
    pub value: Option<String>,
}

impl fmt::Display for TraceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.value {
            Some(v) => write!(f, "[n{}] {}   (= {v})", self.node.0, self.stmt),
            None => write!(f, "[n{}] {}", self.node.0, self.stmt),
        }
    }
}

/// Replays `input` deterministically over the program's CFG (source
/// semantics), recording each executed statement. Branches pick the first
/// successor whose guard holds, mirroring single-match table semantics.
pub fn trace_execution(program: &CompiledProgram, input: &ConcreteState) -> Vec<TraceStep> {
    let cfg = &program.cfg;
    let fields = &cfg.fields;
    let mut state = input.clone();
    let mut node = cfg.entry();
    let mut steps = Vec::new();
    let mut fuel = cfg.num_nodes() + 16;
    loop {
        fuel -= 1;
        if fuel == 0 {
            break;
        }
        let stmt = cfg.stmt(node);
        match stmt {
            Stmt::Assign(f, e) => {
                let v = state.eval_aexp(fields, e);
                state.set(fields, *f, v);
                steps.push(TraceStep {
                    node,
                    stmt: stmt.display(fields),
                    value: Some(v.to_string()),
                });
            }
            Stmt::Assume(b) => {
                if !stmt.is_nop() {
                    steps.push(TraceStep {
                        node,
                        stmt: stmt.display(fields),
                        value: None,
                    });
                }
                if !state.eval_bexp(fields, b) {
                    // Entered on a stale decision; record and stop.
                    steps.push(TraceStep {
                        node,
                        stmt: "<guard failed — execution stuck>".to_string(),
                        value: None,
                    });
                    break;
                }
            }
        }
        let succ = cfg.succ(node);
        if succ.is_empty() {
            break;
        }
        let mut next = None;
        for &s in succ {
            match cfg.stmt(s) {
                Stmt::Assume(b) => {
                    if state.eval_bexp(fields, b) {
                        next = Some(s);
                        break;
                    }
                }
                _ => {
                    next = Some(s);
                    break;
                }
            }
        }
        match next {
            Some(n) => node = n,
            None => {
                steps.push(TraceStep {
                    node,
                    stmt: "<no viable branch — packet behaviour undefined>".to_string(),
                    value: None,
                });
                break;
            }
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use meissa_lang::{compile, parse_program, parse_rules};
    use meissa_num::Bv;

    fn program() -> CompiledProgram {
        let src = r#"
            header pkt { t: 16; }
            metadata meta { class: 8; }
            parser p { state start { extract(pkt); accept; } }
            action cls(c: 8) { meta.class = c; }
            action none_() { }
            table tbl {
              key = { hdr.pkt.t: exact; }
              actions = { cls; none_; }
              default_action = none_();
            }
            control c { apply(tbl); }
            pipeline main { parser = p; control = c; }
        "#;
        let rules = "rules tbl { 7 => cls(1); 8 => cls(2); }";
        compile(
            &parse_program(src).unwrap(),
            &parse_rules(rules).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn trace_records_hit_rule_and_values() {
        let cp = program();
        let fields = &cp.cfg.fields;
        let t = fields.get("hdr.pkt.t").unwrap();
        let input = ConcreteState::from_pairs([(t, Bv::new(16, 8))]);
        let trace = trace_execution(&cp, &input);
        let text: Vec<String> = trace.iter().map(|s| s.to_string()).collect();
        let joined = text.join("\n");
        assert!(joined.contains("hdr.pkt.t == 0x0008"), "{joined}");
        assert!(joined.contains("meta.class"), "{joined}");
        let assign = trace
            .iter()
            .filter(|s| s.stmt.contains("meta.class") && s.value.is_some())
            .next_back()
            .unwrap();
        assert_eq!(assign.value.as_deref(), Some("2"));
    }

    #[test]
    fn trace_follows_default_branch() {
        let cp = program();
        let fields = &cp.cfg.fields;
        let t = fields.get("hdr.pkt.t").unwrap();
        let input = ConcreteState::from_pairs([(t, Bv::new(16, 99))]);
        let trace = trace_execution(&cp, &input);
        let joined = trace
            .iter()
            .map(|s| s.stmt.clone())
            .collect::<Vec<_>>()
            .join("\n");
        // Default branch condition: both rule negations.
        assert!(joined.contains('!'), "{joined}");
        assert!(
            !trace.iter().any(|s| s.stmt.contains("stuck")),
            "{joined}"
        );
    }

    #[test]
    fn trace_terminates() {
        let cp = program();
        let trace = trace_execution(&cp, &ConcreteState::new());
        assert!(!trace.is_empty());
        assert!(trace.len() < cp.cfg.num_nodes() + 16);
    }
}
