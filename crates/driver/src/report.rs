//! Test reports: per-case verdicts and the aggregate the driver returns
//! ("Meissa reports passed and failed test cases to the developer", §3).
//!
//! Besides verdict counters, the report carries timing: every case records
//! its wall-clock latency (send → verdict), and the aggregate surfaces the
//! p50/p99 latency and end-to-end throughput — the numbers that matter once
//! the driver runs over a real wire instead of an in-process call.

use crate::localize::TraceStep;
use std::fmt;
use std::time::Duration;

/// Outcome of one test case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Actual output matched the expected output and every applicable
    /// intent held.
    Pass,
    /// Actual output diverged from the expected (source-semantics) output —
    /// the signature of a non-code bug when the source is believed correct.
    OutputMismatch {
        /// Human-readable difference description.
        detail: String,
    },
    /// An LPI intent's `expect` clause failed on the produced state.
    IntentViolation {
        /// Name of the violated intent.
        intent: String,
    },
    /// The case could not be executed (e.g. hash post-filter rejected every
    /// candidate packet).
    Skipped {
        /// Why.
        reason: String,
    },
}

/// One test case's result.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Template that produced the case.
    pub template_id: usize,
    /// The verdict.
    pub verdict: Verdict,
    /// Bug-localization trace (§7), populated on failure.
    pub trace: Vec<TraceStep>,
    /// Wall-clock latency from injection to verdict. For the wire driver
    /// this spans send → matched response (including retries); skipped
    /// cases record zero.
    pub latency: Duration,
}

impl CaseResult {
    /// A case result with no latency recorded yet.
    pub fn new(template_id: usize, verdict: Verdict, trace: Vec<TraceStep>) -> Self {
        CaseResult {
            template_id,
            verdict,
            trace,
            latency: Duration::ZERO,
        }
    }
}

/// The aggregate test report.
#[derive(Clone, Debug)]
pub struct TestReport {
    /// Name of the fault configuration the target ran under (for bench
    /// matrices; "none" for production targets).
    pub target_label: String,
    /// All case results, in template order.
    pub cases: Vec<CaseResult>,
    /// End-to-end wall time of the whole run (sender + receiver + checker);
    /// the denominator of [`TestReport::cases_per_sec`]. Zero when the
    /// driver did not record it.
    pub elapsed: Duration,
}

impl TestReport {
    /// An empty report for the given target label.
    pub fn new(target_label: &str) -> Self {
        TestReport {
            target_label: target_label.to_string(),
            cases: Vec::new(),
            elapsed: Duration::ZERO,
        }
    }

    /// Appends a case result.
    pub fn push(&mut self, case: CaseResult) {
        self.cases.push(case);
    }

    /// Number of passed cases.
    pub fn passed(&self) -> usize {
        self.cases
            .iter()
            .filter(|c| c.verdict == Verdict::Pass)
            .count()
    }

    /// Number of failed cases (mismatches + intent violations).
    pub fn failed(&self) -> usize {
        self.cases
            .iter()
            .filter(|c| {
                matches!(
                    c.verdict,
                    Verdict::OutputMismatch { .. } | Verdict::IntentViolation { .. }
                )
            })
            .count()
    }

    /// Number of skipped cases.
    pub fn skipped(&self) -> usize {
        self.cases
            .iter()
            .filter(|c| matches!(c.verdict, Verdict::Skipped { .. }))
            .count()
    }

    /// True when at least one case failed — i.e. Meissa found a bug.
    pub fn found_bug(&self) -> bool {
        self.failed() > 0
    }

    /// Latencies of every executed (non-skipped) case, sorted ascending.
    fn sorted_latencies(&self) -> Vec<Duration> {
        let mut v: Vec<Duration> = self
            .cases
            .iter()
            .filter(|c| !matches!(c.verdict, Verdict::Skipped { .. }))
            .map(|c| c.latency)
            .collect();
        v.sort();
        v
    }

    /// Nearest-rank percentile of executed-case latency (`p` in 0..=100).
    /// `None` when every case was skipped.
    pub fn latency_percentile(&self, p: u32) -> Option<Duration> {
        let v = self.sorted_latencies();
        if v.is_empty() {
            return None;
        }
        let rank = meissa_testkit::obs::percentile_index(v.len(), p);
        Some(v[rank.min(v.len() - 1)])
    }

    /// Median per-case latency.
    pub fn latency_p50(&self) -> Option<Duration> {
        self.latency_percentile(50)
    }

    /// 99th-percentile per-case latency.
    pub fn latency_p99(&self) -> Option<Duration> {
        self.latency_percentile(99)
    }

    /// Executed cases per second of end-to-end wall time. `None` when the
    /// driver recorded no elapsed time.
    pub fn cases_per_sec(&self) -> Option<f64> {
        if self.elapsed.is_zero() {
            return None;
        }
        let executed = self.cases.len() - self.skipped();
        Some(executed as f64 / self.elapsed.as_secs_f64())
    }
}

impl fmt::Display for TestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "test report (target: {}): {} passed, {} failed, {} skipped of {} cases",
            self.target_label,
            self.passed(),
            self.failed(),
            self.skipped(),
            self.cases.len()
        )?;
        if let (Some(p50), Some(p99)) = (self.latency_p50(), self.latency_p99()) {
            write!(
                f,
                "  latency p50 {:.3}ms, p99 {:.3}ms",
                p50.as_secs_f64() * 1e3,
                p99.as_secs_f64() * 1e3
            )?;
            if let Some(tput) = self.cases_per_sec() {
                write!(f, ", {tput:.0} cases/s")?;
            }
            writeln!(f)?;
        }
        for c in &self.cases {
            match &c.verdict {
                Verdict::Pass => {}
                Verdict::OutputMismatch { detail } => {
                    writeln!(f, "  case #{}: NO PASS — {detail}", c.template_id)?;
                    for step in c.trace.iter().take(12) {
                        writeln!(f, "      {step}")?;
                    }
                    if c.trace.len() > 12 {
                        writeln!(f, "      … {} more steps", c.trace.len() - 12)?;
                    }
                }
                Verdict::IntentViolation { intent } => {
                    writeln!(f, "  case #{}: NO PASS — intent `{intent}` violated", c.template_id)?;
                }
                Verdict::Skipped { reason } => {
                    writeln!(f, "  case #{}: skipped — {reason}", c.template_id)?;
                }
            }
        }
        Ok(())
    }
}

/// Aggregate result of a sustained-soak run (the wire driver's
/// wall-clock replay mode, optionally fuzzing). A soak produces far too
/// many cases to keep per-case results; this carries counters only.
///
/// `elapsed` covers the replay phase — planning happened before the soak
/// clock started — so [`SoakStats::cases_per_sec`] measures the wire tier.
#[derive(Clone, Debug, Default)]
pub struct SoakStats {
    /// Replay-phase wall time.
    pub elapsed: Duration,
    /// Cases replayed to a verdict (responses plus drain-phase give-ups).
    pub cases: u64,
    /// Cases where the target's observed behaviour disagreed with the
    /// reference (zero on a faithful target, fuzzed or not).
    pub divergent: u64,
    /// Cases that needed at least one retransmission.
    pub retried: u64,
    /// Whether packets were mutated before injection.
    pub fuzzed: bool,
    /// Divergence class → count, sorted by class name. Classes are stable
    /// strings (`missing-output`, `unexpected-forward`, `payload-mismatch`,
    /// `port-mismatch`, `state-mismatch`, `no-response`).
    pub classes: Vec<(String, u64)>,
    /// Total rule arms (installed rules + miss arms) in the program under
    /// soak. Zero when the reference ran without a tally.
    pub rules_total: u64,
    /// Rule arms the replay exercised at least once.
    pub rules_hit: u64,
    /// Coverage-growth curve: `(t_ms, arms_hit)` samples at coarse time
    /// buckets over the replay, cumulative and therefore monotone. Shows
    /// how fast the replayed case mix saturates the rule set.
    pub coverage_curve: Vec<(u64, u64)>,
}

impl SoakStats {
    /// Replayed cases per second of soak wall time. `None` when no time
    /// was recorded.
    pub fn cases_per_sec(&self) -> Option<f64> {
        if self.elapsed.is_zero() {
            return None;
        }
        Some(self.cases as f64 / self.elapsed.as_secs_f64())
    }
}

impl fmt::Display for SoakStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "soak{}: {} cases in {:.2}s",
            if self.fuzzed { " (fuzz)" } else { "" },
            self.cases,
            self.elapsed.as_secs_f64()
        )?;
        if let Some(tput) = self.cases_per_sec() {
            write!(f, " = {tput:.0}/s")?;
        }
        write!(f, ", {} divergent, {} retried", self.divergent, self.retried)?;
        if self.rules_total > 0 {
            write!(f, ", rules {}/{}", self.rules_hit, self.rules_total)?;
        }
        for (class, n) in &self.classes {
            write!(f, "\n  {class}: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_stats_throughput_and_display() {
        let mut s = SoakStats {
            elapsed: Duration::from_secs(2),
            cases: 5000,
            divergent: 3,
            retried: 7,
            fuzzed: true,
            classes: vec![("payload-mismatch".into(), 2), ("no-response".into(), 1)],
            rules_total: 6,
            rules_hit: 5,
            coverage_curve: vec![(0, 3), (500, 5)],
        };
        assert_eq!(s.cases_per_sec(), Some(2500.0));
        let text = s.to_string();
        assert!(text.contains("soak (fuzz)"), "{text}");
        assert!(text.contains("2500/s"), "{text}");
        assert!(text.contains("rules 5/6"), "{text}");
        assert!(text.contains("payload-mismatch: 2"), "{text}");
        s.elapsed = Duration::ZERO;
        assert_eq!(s.cases_per_sec(), None);
    }

    #[test]
    fn counters_partition_cases() {
        let mut r = TestReport::new("none");
        r.push(CaseResult::new(0, Verdict::Pass, vec![]));
        r.push(CaseResult::new(
            1,
            Verdict::OutputMismatch { detail: "x".into() },
            vec![],
        ));
        r.push(CaseResult::new(
            2,
            Verdict::IntentViolation { intent: "i".into() },
            vec![],
        ));
        r.push(CaseResult::new(
            3,
            Verdict::Skipped { reason: "r".into() },
            vec![],
        ));
        assert_eq!(r.passed(), 1);
        assert_eq!(r.failed(), 2);
        assert_eq!(r.skipped(), 1);
        assert!(r.found_bug());
        let text = r.to_string();
        assert!(text.contains("NO PASS"));
        assert!(text.contains("intent `i`"));
    }

    #[test]
    fn clean_report_has_no_failures() {
        let mut r = TestReport::new("none");
        for i in 0..5 {
            r.push(CaseResult::new(i, Verdict::Pass, vec![]));
        }
        assert!(!r.found_bug());
        assert_eq!(r.passed(), 5);
    }

    #[test]
    fn latency_percentiles_use_executed_cases_only() {
        let mut r = TestReport::new("none");
        for (i, ms) in [10u64, 20, 30, 40, 1000].iter().enumerate() {
            r.push(CaseResult {
                template_id: i,
                verdict: Verdict::Pass,
                trace: vec![],
                latency: Duration::from_millis(*ms),
            });
        }
        // A skipped case's zero latency must not drag the percentiles down.
        r.push(CaseResult::new(9, Verdict::Skipped { reason: "s".into() }, vec![]));
        assert_eq!(r.latency_p50(), Some(Duration::from_millis(30)));
        assert_eq!(r.latency_p99(), Some(Duration::from_millis(1000)));
        r.elapsed = Duration::from_secs(1);
        assert_eq!(r.cases_per_sec(), Some(5.0));
        let text = r.to_string();
        assert!(text.contains("latency p50"), "{text}");
    }

    #[test]
    fn empty_and_all_skipped_reports_have_no_percentiles() {
        let r = TestReport::new("none");
        assert_eq!(r.latency_p50(), None);
        assert_eq!(r.cases_per_sec(), None);
        let mut r = TestReport::new("none");
        r.push(CaseResult::new(0, Verdict::Skipped { reason: "s".into() }, vec![]));
        assert_eq!(r.latency_p99(), None);
    }

    #[test]
    fn cases_per_sec_is_none_without_recorded_elapsed() {
        // `elapsed` is documented as zero when the driver did not record
        // it; throughput must be absent rather than a division by zero,
        // even when the report holds executed cases.
        let mut r = TestReport::new("none");
        r.push(CaseResult::new(0, Verdict::Pass, vec![]));
        r.push(CaseResult::new(1, Verdict::OutputMismatch { detail: "x".into() }, vec![]));
        assert_eq!(r.elapsed, Duration::ZERO);
        assert_eq!(r.cases_per_sec(), None);
        r.elapsed = Duration::from_millis(500);
        assert_eq!(r.cases_per_sec(), Some(4.0));
    }
}
