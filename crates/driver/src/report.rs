//! Test reports: per-case verdicts and the aggregate the driver returns
//! ("Meissa reports passed and failed test cases to the developer", §3).

use crate::localize::TraceStep;
use std::fmt;

/// Outcome of one test case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Actual output matched the expected output and every applicable
    /// intent held.
    Pass,
    /// Actual output diverged from the expected (source-semantics) output —
    /// the signature of a non-code bug when the source is believed correct.
    OutputMismatch {
        /// Human-readable difference description.
        detail: String,
    },
    /// An LPI intent's `expect` clause failed on the produced state.
    IntentViolation {
        /// Name of the violated intent.
        intent: String,
    },
    /// The case could not be executed (e.g. hash post-filter rejected every
    /// candidate packet).
    Skipped {
        /// Why.
        reason: String,
    },
}

/// One test case's result.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Template that produced the case.
    pub template_id: usize,
    /// The verdict.
    pub verdict: Verdict,
    /// Bug-localization trace (§7), populated on failure.
    pub trace: Vec<TraceStep>,
}

/// The aggregate test report.
#[derive(Clone, Debug)]
pub struct TestReport {
    /// Name of the fault configuration the target ran under (for bench
    /// matrices; "none" for production targets).
    pub target_label: String,
    /// All case results, in template order.
    pub cases: Vec<CaseResult>,
}

impl TestReport {
    /// An empty report for the given target label.
    pub fn new(target_label: &str) -> Self {
        TestReport {
            target_label: target_label.to_string(),
            cases: Vec::new(),
        }
    }

    /// Appends a case result.
    pub fn push(&mut self, case: CaseResult) {
        self.cases.push(case);
    }

    /// Number of passed cases.
    pub fn passed(&self) -> usize {
        self.cases
            .iter()
            .filter(|c| c.verdict == Verdict::Pass)
            .count()
    }

    /// Number of failed cases (mismatches + intent violations).
    pub fn failed(&self) -> usize {
        self.cases
            .iter()
            .filter(|c| {
                matches!(
                    c.verdict,
                    Verdict::OutputMismatch { .. } | Verdict::IntentViolation { .. }
                )
            })
            .count()
    }

    /// Number of skipped cases.
    pub fn skipped(&self) -> usize {
        self.cases
            .iter()
            .filter(|c| matches!(c.verdict, Verdict::Skipped { .. }))
            .count()
    }

    /// True when at least one case failed — i.e. Meissa found a bug.
    pub fn found_bug(&self) -> bool {
        self.failed() > 0
    }
}

impl fmt::Display for TestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "test report (target: {}): {} passed, {} failed, {} skipped of {} cases",
            self.target_label,
            self.passed(),
            self.failed(),
            self.skipped(),
            self.cases.len()
        )?;
        for c in &self.cases {
            match &c.verdict {
                Verdict::Pass => {}
                Verdict::OutputMismatch { detail } => {
                    writeln!(f, "  case #{}: NO PASS — {detail}", c.template_id)?;
                    for step in c.trace.iter().take(12) {
                        writeln!(f, "      {step}")?;
                    }
                    if c.trace.len() > 12 {
                        writeln!(f, "      … {} more steps", c.trace.len() - 12)?;
                    }
                }
                Verdict::IntentViolation { intent } => {
                    writeln!(f, "  case #{}: NO PASS — intent `{intent}` violated", c.template_id)?;
                }
                Verdict::Skipped { reason } => {
                    writeln!(f, "  case #{}: skipped — {reason}", c.template_id)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_partition_cases() {
        let mut r = TestReport::new("none");
        r.push(CaseResult {
            template_id: 0,
            verdict: Verdict::Pass,
            trace: vec![],
        });
        r.push(CaseResult {
            template_id: 1,
            verdict: Verdict::OutputMismatch {
                detail: "x".into(),
            },
            trace: vec![],
        });
        r.push(CaseResult {
            template_id: 2,
            verdict: Verdict::IntentViolation {
                intent: "i".into(),
            },
            trace: vec![],
        });
        r.push(CaseResult {
            template_id: 3,
            verdict: Verdict::Skipped {
                reason: "r".into(),
            },
            trace: vec![],
        });
        assert_eq!(r.passed(), 1);
        assert_eq!(r.failed(), 2);
        assert_eq!(r.skipped(), 1);
        assert!(r.found_bug());
        let text = r.to_string();
        assert!(text.contains("NO PASS"));
        assert!(text.contains("intent `i`"));
    }

    #[test]
    fn clean_report_has_no_failures() {
        let mut r = TestReport::new("none");
        for i in 0..5 {
            r.push(CaseResult {
                template_id: i,
                verdict: Verdict::Pass,
                trace: vec![],
            });
        }
        assert!(!r.found_bug());
        assert_eq!(r.passed(), 5);
    }
}
