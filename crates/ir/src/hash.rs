//! Concrete hash functions for the data plane's `hash(...)` primitive.
//!
//! Per §4 of the paper, hashing is not pushed into the SMT solver. The
//! symbolic executor folds a hash application to a constant when every key
//! is concretely known, and otherwise leaves the output field arbitrary and
//! post-filters generated packets by *this* concrete implementation. The
//! software switch target uses the same functions, so reference and target
//! semantics agree on hash values by construction.

use meissa_num::Bv;
use meissa_testkit::json::{FromJson, Json, JsonError, ToJson};

/// Hash algorithms available to P4lite programs (Tofino exposes CRC-family
/// hashes plus an identity/"straight-through" selector).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HashAlg {
    /// CRC-16/ARC (poly 0x8005 reflected).
    Crc16,
    /// CRC-32 (IEEE, reflected).
    Crc32,
    /// Identity: concatenate inputs and truncate. Used by programs that
    /// select ECMP members directly from header bits.
    Identity,
    /// 16-bit one's-complement sum (the Internet checksum), used by the
    /// checksum-update logic the §6 "checksum fail-to-update" case exercises.
    Csum16,
}

impl HashAlg {
    /// Computes the hash of the concatenated big-endian encoding of `keys`,
    /// truncated/zero-extended to `width` bits.
    pub fn compute(self, width: u16, keys: &[Bv]) -> Bv {
        let mut bytes = Vec::new();
        for k in keys {
            bytes.extend_from_slice(&k.to_be_bytes());
        }
        let raw: u128 = match self {
            HashAlg::Crc16 => crc16_arc(&bytes) as u128,
            HashAlg::Crc32 => crc32_ieee(&bytes) as u128,
            HashAlg::Csum16 => csum16(&bytes) as u128,
            HashAlg::Identity => {
                let mut v = 0u128;
                for &b in bytes.iter().rev().take(16).rev() {
                    v = (v << 8) | b as u128;
                }
                v
            }
        };
        Bv::new(width, raw)
    }
}

impl ToJson for HashAlg {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                HashAlg::Crc16 => "Crc16",
                HashAlg::Crc32 => "Crc32",
                HashAlg::Identity => "Identity",
                HashAlg::Csum16 => "Csum16",
            }
            .into(),
        )
    }
}

impl FromJson for HashAlg {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str().map_err(|e| e.context("HashAlg"))? {
            "Crc16" => Ok(HashAlg::Crc16),
            "Crc32" => Ok(HashAlg::Crc32),
            "Identity" => Ok(HashAlg::Identity),
            "Csum16" => Ok(HashAlg::Csum16),
            other => Err(JsonError::new(format!("unknown HashAlg `{other}`"))),
        }
    }
}

/// The Internet checksum (RFC 1071): one's-complement sum of 16-bit
/// big-endian words, complemented. Odd trailing bytes are zero-padded.
fn csum16(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// CRC-16/ARC: poly 0x8005, reflected, init 0x0000, xorout 0x0000.
fn crc16_arc(data: &[u8]) -> u16 {
    let mut crc: u16 = 0;
    for &b in data {
        crc ^= b as u16;
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0xA001;
            } else {
                crc >>= 1;
            }
        }
    }
    crc
}

/// CRC-32 (IEEE 802.3): poly 0x04C11DB7 reflected, init/xorout 0xFFFFFFFF.
fn crc32_ieee(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0xEDB8_8320;
            } else {
                crc >>= 1;
            }
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csum16_known_vector() {
        // RFC 1071 example: 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0xddf2
        // (after carry wrap), checksum = !0xddf2 = 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(csum16(&data), 0x220d);
    }

    #[test]
    fn csum16_odd_length_pads() {
        assert_eq!(csum16(&[0xab]), !0xab00u16);
    }

    #[test]
    fn csum16_verifies_to_zero() {
        // Appending the checksum to the data makes the sum 0xffff, i.e. a
        // fresh checksum over (data ++ checksum) complement is zero.
        let data = [0x45, 0x00, 0x00, 0x1c, 0x12, 0x34];
        let c = csum16(&data);
        let mut full = data.to_vec();
        full.extend_from_slice(&c.to_be_bytes());
        assert_eq!(csum16(&full), 0);
    }

    #[test]
    fn crc16_known_vector() {
        // CRC-16/ARC("123456789") = 0xBB3D.
        assert_eq!(crc16_arc(b"123456789"), 0xBB3D);
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32_ieee(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn compute_truncates_to_width() {
        let keys = [Bv::new(32, 0xdeadbeef)];
        let h = HashAlg::Crc32.compute(8, &keys);
        assert_eq!(h.width(), 8);
        let full = HashAlg::Crc32.compute(32, &keys);
        assert_eq!(h.val(), full.val() & 0xff);
    }

    #[test]
    fn identity_hash_passes_bits_through() {
        let keys = [Bv::new(16, 0xabcd)];
        assert_eq!(HashAlg::Identity.compute(16, &keys), Bv::new(16, 0xabcd));
        assert_eq!(HashAlg::Identity.compute(8, &keys), Bv::new(8, 0xcd));
    }

    #[test]
    fn deterministic_across_calls() {
        let keys = [Bv::new(32, 0x0a000001), Bv::new(16, 443)];
        assert_eq!(
            HashAlg::Crc16.compute(16, &keys),
            HashAlg::Crc16.compute(16, &keys)
        );
    }

    #[test]
    fn multiple_keys_concatenate() {
        // hash(a ++ b) must differ from hash(b ++ a) for CRCs in general.
        let a = Bv::new(16, 0x0102);
        let b = Bv::new(16, 0x0304);
        let h1 = HashAlg::Crc16.compute(16, &[a, b]);
        let h2 = HashAlg::Crc16.compute(16, &[b, a]);
        assert_ne!(h1, h2);
    }
}
