//! Header field identifiers (`field_id` in the paper's Fig. 3 grammar).
//!
//! A field names a slice of packet or metadata state: `hdr.ipv4.dst_addr`,
//! `meta.egress_port`, a header validity bit `hdr.ipv4.$valid`, a register
//! cell modeled per §4 as `REG:counters-POS:0`, or a summary auxiliary
//! variable `@ppl2.hdr.tcp.src_port`. Fields are interned into dense ids so
//! that symbolic and concrete states are flat vectors/maps keyed by `u32`.

use meissa_testkit::json::{FromJson, Json, JsonError, ToJson};
use std::collections::HashMap;

/// A dense handle for an interned field name.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FieldId(pub u32);

impl ToJson for FieldId {
    fn to_json(&self) -> Json {
        Json::UInt(self.0 as u128)
    }
}

impl FromJson for FieldId {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(FieldId(u32::from_json(v).map_err(|e| e.context("FieldId"))?))
    }
}

/// The interning table mapping field names to ids and widths.
#[derive(Clone, Default, Debug)]
pub struct FieldTable {
    names: Vec<String>,
    widths: Vec<u16>,
    by_name: HashMap<String, FieldId>,
}

impl FieldTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a field, returning its id.
    ///
    /// # Panics
    /// Panics if the field exists with a different width — widths are fixed
    /// by header declarations and a mismatch is a frontend bug.
    pub fn intern(&mut self, name: &str, width: u16) -> FieldId {
        if let Some(&id) = self.by_name.get(name) {
            assert_eq!(
                self.widths[id.0 as usize], width,
                "field {name} re-interned with different width"
            );
            return id;
        }
        let id = FieldId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.widths.push(width);
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up a field by name.
    pub fn get(&self, name: &str) -> Option<FieldId> {
        self.by_name.get(name).copied()
    }

    /// The name of a field.
    pub fn name(&self, id: FieldId) -> &str {
        &self.names[id.0 as usize]
    }

    /// The width of a field in bits.
    pub fn width(&self, id: FieldId) -> u16 {
        self.widths[id.0 as usize]
    }

    /// Number of interned fields.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no fields are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all field ids.
    pub fn iter(&self) -> impl Iterator<Item = FieldId> + '_ {
        (0..self.names.len() as u32).map(FieldId)
    }

    /// True if the field is a header validity bit (`….$valid`).
    pub fn is_validity(&self, id: FieldId) -> bool {
        self.name(id).ends_with(".$valid")
    }

    /// True if the field is a summary auxiliary variable (`@…`), which must
    /// never appear in a test template's input constraints.
    pub fn is_auxiliary(&self, id: FieldId) -> bool {
        self.name(id).starts_with('@')
    }
}

impl ToJson for FieldTable {
    fn to_json(&self) -> Json {
        // `by_name` is derived from `names`, so only names/widths persist.
        Json::Obj(vec![
            ("names".into(), self.names.to_json()),
            ("widths".into(), self.widths.to_json()),
        ])
    }
}

impl FromJson for FieldTable {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let names = Vec::<String>::from_json(v.field("names")?)
            .map_err(|e| e.context("FieldTable.names"))?;
        let widths = Vec::<u16>::from_json(v.field("widths")?)
            .map_err(|e| e.context("FieldTable.widths"))?;
        if names.len() != widths.len() {
            return Err(JsonError::new("FieldTable names/widths length mismatch"));
        }
        let by_name = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), FieldId(i as u32)))
            .collect::<HashMap<_, _>>();
        if by_name.len() != names.len() {
            return Err(JsonError::new("FieldTable has duplicate field names"));
        }
        Ok(FieldTable {
            names,
            widths,
            by_name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = FieldTable::new();
        let a = t.intern("hdr.ipv4.dst_addr", 32);
        let b = t.intern("hdr.ipv4.dst_addr", 32);
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        assert_eq!(t.name(a), "hdr.ipv4.dst_addr");
        assert_eq!(t.width(a), 32);
    }

    #[test]
    fn distinct_fields_get_distinct_ids() {
        let mut t = FieldTable::new();
        let a = t.intern("hdr.tcp.src_port", 16);
        let b = t.intern("hdr.tcp.dst_port", 16);
        assert_ne!(a, b);
        assert_eq!(t.get("hdr.tcp.src_port"), Some(a));
        assert_eq!(t.get("nonexistent"), None);
    }

    #[test]
    #[should_panic(expected = "different width")]
    fn width_conflict_panics() {
        let mut t = FieldTable::new();
        t.intern("meta.port", 9);
        t.intern("meta.port", 16);
    }

    #[test]
    fn classifies_special_fields() {
        let mut t = FieldTable::new();
        let v = t.intern("hdr.ipv4.$valid", 1);
        let aux = t.intern("@ppl1.hdr.tcp.src_port", 16);
        let plain = t.intern("hdr.tcp.src_port", 16);
        assert!(t.is_validity(v));
        assert!(!t.is_validity(plain));
        assert!(t.is_auxiliary(aux));
        assert!(!t.is_auxiliary(plain));
    }
}
