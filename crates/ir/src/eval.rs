//! Concrete evaluation — the big-step semantics of paper Fig. 4.
//!
//! A concrete state `s` maps field ids to bitvector values. Action
//! statements update the state; a predicate whose condition evaluates to
//! false has *no* evaluation rule, which this implementation reports as
//! [`EvalError::PredicateFailed`]. A path is **valid** (Definition 2)
//! exactly when some initial state evaluates it to completion, and the test
//! driver uses this evaluator as the reference semantics a hardware target
//! must agree with.

use crate::cfg::{Cfg, NodeId};
use crate::exp::{AExp, AOp, BExp, BOp, CmpOp, Stmt};
use crate::fields::{FieldId, FieldTable};
use meissa_num::Bv;

/// A concrete execution state: `s ∈ field_id → int` (Fig. 4).
///
/// Fields absent from the map read as zero — the "uninitialized metadata is
/// zero" convention of P4 targets. Field ids are dense (interned indices),
/// so the map is a flat vector: `get`/`set` are array indexing, and `clone`
/// is a memcpy — this sits on the interpreter's per-packet hot path.
///
/// Equality distinguishes an explicitly-set zero from an absent field
/// (matching the original map semantics); trailing unset slots are ignored.
#[derive(Clone, Default, Debug)]
pub struct ConcreteState {
    values: Vec<Option<Bv>>,
    count: usize,
}

impl PartialEq for ConcreteState {
    fn eq(&self, other: &Self) -> bool {
        if self.count != other.count {
            return false;
        }
        let shared = self.values.len().min(other.values.len());
        self.values[..shared] == other.values[..shared]
            && self.values[shared..].iter().all(Option::is_none)
            && other.values[shared..].iter().all(Option::is_none)
    }
}

impl Eq for ConcreteState {}

/// Why a concrete evaluation step got stuck.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A predicate node's condition evaluated to false at the given node —
    /// there is no evaluation rule for a false `assume` (Fig. 4).
    PredicateFailed(NodeId),
}

impl ConcreteState {
    /// The empty (all-zeros) state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a state from (field, value) pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (FieldId, Bv)>) -> Self {
        let mut s = ConcreteState::default();
        for (f, v) in pairs {
            s.set_unchecked(f, v);
        }
        s
    }

    /// Reads a field (zero when unset).
    pub fn get(&self, fields: &FieldTable, f: FieldId) -> Bv {
        match self.values.get(f.0 as usize) {
            Some(Some(v)) => *v,
            _ => Bv::zero(fields.width(f)),
        }
    }

    /// Writes a field.
    ///
    /// # Panics
    /// Panics on a width mismatch with the field declaration.
    pub fn set(&mut self, fields: &FieldTable, f: FieldId, v: Bv) {
        assert_eq!(
            fields.width(f),
            v.width(),
            "state write width mismatch for {}",
            fields.name(f)
        );
        self.set_unchecked(f, v);
    }

    fn set_unchecked(&mut self, f: FieldId, v: Bv) {
        let i = f.0 as usize;
        if i >= self.values.len() {
            self.values.resize(i + 1, None);
        }
        if self.values[i].replace(v).is_none() {
            self.count += 1;
        }
    }

    /// Iterates over explicitly-set fields, in ascending field-id order.
    pub fn iter(&self) -> impl Iterator<Item = (FieldId, Bv)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|v| (FieldId(i as u32), v)))
    }

    /// Number of explicitly-set fields.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if no field is explicitly set.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Evaluates an arithmetic expression in this state.
    pub fn eval_aexp(&self, fields: &FieldTable, e: &AExp) -> Bv {
        match e {
            AExp::Field(f) => self.get(fields, *f),
            AExp::Const(v) => *v,
            AExp::Bin(op, a, b) => {
                let x = self.eval_aexp(fields, a);
                let y = self.eval_aexp(fields, b);
                match op {
                    AOp::Add => x.add(&y),
                    AOp::Sub => x.sub(&y),
                    AOp::And => x.and(&y),
                    AOp::Or => x.or(&y),
                    AOp::Xor => x.xor(&y),
                }
            }
            AExp::Not(a) => self.eval_aexp(fields, a).not(),
            AExp::Shl(a, n) => self.eval_aexp(fields, a).shl(*n as u32),
            AExp::Shr(a, n) => self.eval_aexp(fields, a).shr(*n as u32),
            AExp::Hash(alg, w, args) => {
                let keys: Vec<Bv> = args.iter().map(|a| self.eval_aexp(fields, a)).collect();
                alg.compute(*w, &keys)
            }
        }
    }

    /// Evaluates a boolean expression in this state.
    pub fn eval_bexp(&self, fields: &FieldTable, e: &BExp) -> bool {
        match e {
            BExp::True => true,
            BExp::False => false,
            BExp::Cmp(op, a, b) => {
                let x = self.eval_aexp(fields, a);
                let y = self.eval_aexp(fields, b);
                match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x.ult(&y),
                    CmpOp::Gt => x.ugt(&y),
                    CmpOp::Le => !x.ugt(&y),
                    CmpOp::Ge => !x.ult(&y),
                }
            }
            BExp::Bin(op, a, b) => {
                let x = self.eval_bexp(fields, a);
                match op {
                    BOp::And => x && self.eval_bexp(fields, b),
                    BOp::Or => x || self.eval_bexp(fields, b),
                }
            }
            BExp::Not(a) => !self.eval_bexp(fields, a),
        }
    }
}

/// Evaluates one statement (Fig. 4's Action and Predicate rules).
pub fn eval_stmt(
    fields: &FieldTable,
    state: &mut ConcreteState,
    node: NodeId,
    stmt: &Stmt,
) -> Result<(), EvalError> {
    match stmt {
        Stmt::Assign(f, e) => {
            let v = state.eval_aexp(fields, e);
            state.set(fields, *f, v);
            Ok(())
        }
        Stmt::Assume(b) => {
            if state.eval_bexp(fields, b) {
                Ok(())
            } else {
                Err(EvalError::PredicateFailed(node))
            }
        }
    }
}

/// Evaluates a path (Fig. 4's Sequential-evaluation rule): `⟨π; s⟩ → s'`.
///
/// On success returns the final state. On a failed predicate returns the
/// node at which evaluation got stuck, which the test driver reports as the
/// divergence point.
pub fn eval_path(
    cfg: &Cfg,
    path: &[NodeId],
    initial: &ConcreteState,
) -> Result<ConcreteState, EvalError> {
    let mut s = initial.clone();
    for &n in path {
        eval_stmt(&cfg.fields, &mut s, n, cfg.stmt(n))?;
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::CfgBuilder;

    /// Builds the Fig. 5 example graphs and checks their validity verdicts.
    fn mini_cfg() -> (Cfg, FieldId, FieldId) {
        let mut b = CfgBuilder::new();
        let dst = b.fields_mut().intern("dstIP", 32);
        let port = b.fields_mut().intern("srcPort", 16);
        b.nop();
        let g = b.finish();
        (g, dst, port)
    }

    #[test]
    fn fig5a_valid_path() {
        // dstIP == 127.1.*.* then egressPort ← 5: reachable.
        let mut b = CfgBuilder::new();
        let dst = b.fields_mut().intern("dstIP", 32);
        let eport = b.fields_mut().intern("egressPort", 9);
        let masked = AExp::bin(
            AOp::And,
            AExp::Field(dst),
            AExp::Const(Bv::new(32, 0xffff_0000)),
        );
        b.stmt(Stmt::Assume(BExp::eq(
            masked,
            AExp::Const(Bv::new(32, 0x7f01_0000)),
        )));
        b.stmt(Stmt::Assign(eport, AExp::Const(Bv::new(9, 5))));
        let g = b.finish();
        let path: Vec<NodeId> = g.topo_order();

        let good = ConcreteState::from_pairs([(dst, Bv::new(32, 0x7f01_0203))]);
        let out = eval_path(&g, &path, &good).expect("valid path");
        assert_eq!(out.get(&g.fields, eport), Bv::new(9, 5));

        let bad = ConcreteState::from_pairs([(dst, Bv::new(32, 0x0a00_0001))]);
        assert!(matches!(
            eval_path(&g, &path, &bad),
            Err(EvalError::PredicateFailed(_))
        ));
    }

    #[test]
    fn fig5b_invalid_after_assignment() {
        // dstIP ← 192.168.0.1 then dstIP == 10.1.1.1: no initial state works.
        let mut b = CfgBuilder::new();
        let dst = b.fields_mut().intern("dstIP", 32);
        b.stmt(Stmt::Assign(dst, AExp::Const(Bv::new(32, 0xc0a8_0001))));
        b.stmt(Stmt::Assume(BExp::eq(
            AExp::Field(dst),
            AExp::Const(Bv::new(32, 0x0a01_0101)),
        )));
        let g = b.finish();
        let path = g.topo_order();
        // Try the only value that could plausibly satisfy the predicate.
        let s = ConcreteState::from_pairs([(dst, Bv::new(32, 0x0a01_0101))]);
        assert!(eval_path(&g, &path, &s).is_err(), "assignment overwrites");
    }

    #[test]
    fn fig5c_contradictory_predicates() {
        let mut b = CfgBuilder::new();
        let port = b.fields_mut().intern("srcPort", 16);
        b.stmt(Stmt::Assume(BExp::eq(
            AExp::Field(port),
            AExp::Const(Bv::new(16, 80)),
        )));
        b.stmt(Stmt::Assume(BExp::eq(
            AExp::Field(port),
            AExp::Const(Bv::new(16, 443)),
        )));
        let g = b.finish();
        let path = g.topo_order();
        for v in [80u128, 443, 0] {
            let s = ConcreteState::from_pairs([(port, Bv::new(16, v))]);
            assert!(eval_path(&g, &path, &s).is_err());
        }
    }

    #[test]
    fn unset_fields_read_zero() {
        let (g, dst, _) = mini_cfg();
        let s = ConcreteState::new();
        assert_eq!(s.get(&g.fields, dst), Bv::zero(32));
    }

    #[test]
    fn aexp_evaluation_covers_operators() {
        let (g, dst, port) = mini_cfg();
        let s = ConcreteState::from_pairs([
            (dst, Bv::new(32, 0x0000_00f0)),
            (port, Bv::new(16, 7)),
        ]);
        let f = AExp::Field(dst);
        let k = AExp::Const(Bv::new(32, 0x0f));
        let cases = [
            (AExp::bin(AOp::Add, f.clone(), k.clone()), 0xff),
            (AExp::bin(AOp::Sub, f.clone(), k.clone()), 0xe1),
            (AExp::bin(AOp::And, f.clone(), k.clone()), 0x00),
            (AExp::bin(AOp::Or, f.clone(), k.clone()), 0xff),
            (AExp::bin(AOp::Xor, f.clone(), k.clone()), 0xff),
            (AExp::Shl(Box::new(f.clone()), 4), 0xf00),
            (AExp::Shr(Box::new(f.clone()), 4), 0x0f),
        ];
        for (e, expect) in cases {
            assert_eq!(s.eval_aexp(&g.fields, &e).val(), expect, "{e:?}");
        }
        assert_eq!(
            s.eval_aexp(&g.fields, &AExp::Not(Box::new(AExp::Const(Bv::new(8, 0x0f))))),
            Bv::new(8, 0xf0)
        );
    }

    #[test]
    fn bexp_evaluation_covers_operators() {
        let (g, dst, _) = mini_cfg();
        let s = ConcreteState::from_pairs([(dst, Bv::new(32, 100))]);
        let f = AExp::Field(dst);
        let k = |v: u128| AExp::Const(Bv::new(32, v));
        let cases = [
            (BExp::Cmp(CmpOp::Eq, f.clone(), k(100)), true),
            (BExp::Cmp(CmpOp::Ne, f.clone(), k(100)), false),
            (BExp::Cmp(CmpOp::Lt, f.clone(), k(101)), true),
            (BExp::Cmp(CmpOp::Gt, f.clone(), k(99)), true),
            (BExp::Cmp(CmpOp::Le, f.clone(), k(100)), true),
            (BExp::Cmp(CmpOp::Ge, f.clone(), k(101)), false),
        ];
        for (e, expect) in cases {
            assert_eq!(s.eval_bexp(&g.fields, &e), expect, "{e:?}");
        }
        let t = BExp::Cmp(CmpOp::Eq, f.clone(), k(100));
        let fls = BExp::Cmp(CmpOp::Eq, f.clone(), k(0));
        assert!(s.eval_bexp(&g.fields, &BExp::and(t.clone(), BExp::not(fls.clone()))));
        assert!(s.eval_bexp(&g.fields, &BExp::or(fls.clone(), t.clone())));
        assert!(!s.eval_bexp(&g.fields, &BExp::and(t, fls)));
    }

    #[test]
    fn hash_evaluates_concretely() {
        use crate::hash::HashAlg;
        let (g, dst, _) = mini_cfg();
        let s = ConcreteState::from_pairs([(dst, Bv::new(32, 0x01020304))]);
        let h = AExp::Hash(HashAlg::Crc16, 16, vec![AExp::Field(dst)]);
        let v1 = s.eval_aexp(&g.fields, &h);
        let expect = HashAlg::Crc16.compute(16, &[Bv::new(32, 0x01020304)]);
        assert_eq!(v1, expect);
    }

    #[test]
    fn sequential_assignment_uses_updated_state() {
        // The paper's §3.3 example: srcPort ← 10000; dstPort ← srcPort + 1
        // evaluated *sequentially* gives 10001 — the very non-atomicity that
        // summary encoding must work around with @vars.
        let mut b = CfgBuilder::new();
        let sp = b.fields_mut().intern("srcPort", 16);
        let dp = b.fields_mut().intern("dstPort", 16);
        b.stmt(Stmt::Assign(sp, AExp::Const(Bv::new(16, 10000))));
        b.stmt(Stmt::Assign(
            dp,
            AExp::bin(AOp::Add, AExp::Field(sp), AExp::Const(Bv::new(16, 1))),
        ));
        let g = b.finish();
        let path = g.topo_order();
        let init = ConcreteState::from_pairs([(sp, Bv::new(16, 555))]);
        let out = eval_path(&g, &path, &init).unwrap();
        assert_eq!(out.get(&g.fields, dp), Bv::new(16, 10001));
    }
}
