//! Possible-path machinery: Definition 1 enumeration and DAG path counting.
//!
//! Counting uses dynamic programming over the topological order with
//! [`BigUint`] — the paper reports possible-path counts up to `10^390`
//! (Fig. 12c), far beyond machine integers, and those counts are exactly
//! what the Fig. 11c/12c benches print.

use crate::cfg::{Cfg, NodeId};
use meissa_num::BigUint;
use std::collections::HashMap;

/// Path-count results for a CFG.
#[derive(Clone, Debug)]
pub struct PathCounts {
    /// Number of possible paths from the entry to any terminal node.
    pub total: BigUint,
}

impl PathCounts {
    /// `log10` of the total, for plotting (Fig. 11c's axis).
    pub fn log10(&self) -> f64 {
        self.total.log10()
    }
}

/// Counts possible paths from the entry to all terminal nodes
/// (Definition 1: maximal paths following `succ`).
pub fn count_paths(cfg: &Cfg) -> PathCounts {
    PathCounts {
        total: count_paths_between(cfg, cfg.entry(), None),
    }
}

/// Counts paths from `from` to `to` (or to any terminal node when `to` is
/// `None`). Runs in `O(V + E)` BigUint operations.
pub fn count_paths_between(cfg: &Cfg, from: NodeId, to: Option<NodeId>) -> BigUint {
    // Count, for each node, the number of maximal paths starting at it,
    // processing nodes in reverse topological order.
    let order = cfg.topo_order();
    let mut counts: HashMap<NodeId, BigUint> = HashMap::new();
    for &n in order.iter().rev() {
        let c = if Some(n) == to {
            BigUint::one()
        } else if cfg.succ(n).is_empty() {
            if to.is_none() {
                BigUint::one()
            } else {
                BigUint::zero()
            }
        } else {
            let mut acc = BigUint::zero();
            for &s in cfg.succ(n) {
                acc = acc.add(&counts[&s]);
            }
            acc
        };
        counts.insert(n, c);
    }
    counts.get(&from).cloned().unwrap_or_else(BigUint::zero)
}

/// Enumerates possible paths from the entry, stopping after `limit` paths.
///
/// Exists for tests and small examples; production-scale graphs have
/// astronomically many possible paths, which is the entire point of the
/// paper — use [`count_paths`] for those.
pub fn enumerate_paths(cfg: &Cfg, limit: usize) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    let mut stack = vec![cfg.entry()];
    enumerate_rec(cfg, &mut stack, &mut out, limit);
    out
}

fn enumerate_rec(cfg: &Cfg, stack: &mut Vec<NodeId>, out: &mut Vec<Vec<NodeId>>, limit: usize) {
    if out.len() >= limit {
        return;
    }
    let cur = *stack.last().unwrap();
    let succ = cfg.succ(cur);
    if succ.is_empty() {
        out.push(stack.clone());
        return;
    }
    for &s in succ {
        stack.push(s);
        enumerate_rec(cfg, stack, out, limit);
        stack.pop();
        if out.len() >= limit {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::CfgBuilder;
    use crate::exp::{AExp, BExp, CmpOp, Stmt};
    use meissa_num::Bv;

    /// Builds a diamond ladder with `k` stages, each stage branching `n`
    /// ways — `n^k` possible paths, the shape of Appendix A's analysis.
    fn ladder(k: usize, n: usize) -> Cfg {
        let mut b = CfgBuilder::new();
        let f = b.fields_mut().intern("x", 32);
        b.nop();
        for _ in 0..k {
            let base = b.frontier();
            let mut arms = Vec::new();
            for i in 0..n {
                b.set_frontier(base.clone());
                b.stmt(Stmt::Assume(BExp::Cmp(
                    CmpOp::Eq,
                    AExp::Field(f),
                    AExp::Const(Bv::new(32, i as u128)),
                )));
                arms.push(b.frontier());
            }
            b.set_frontier(Vec::new());
            b.merge_frontiers(arms);
            b.nop();
        }
        b.finish()
    }

    #[test]
    fn straight_line_has_one_path() {
        let g = ladder(0, 0);
        assert_eq!(count_paths(&g).total, BigUint::one());
        assert_eq!(enumerate_paths(&g, 10).len(), 1);
    }

    #[test]
    fn ladder_counts_exponentially() {
        let g = ladder(5, 3);
        assert_eq!(count_paths(&g).total, BigUint::pow(&BigUint::from_u64(3), 5));
    }

    #[test]
    fn big_ladder_reaches_paper_scale() {
        // 100 stages × 10000 branches = 10^400 possible paths, the Fig. 12c
        // scale — counting stays fast because it's DP, not enumeration.
        let g = ladder(100, 100);
        let c = count_paths(&g);
        assert!((c.log10() - 200.0).abs() < 0.01, "log10 = {}", c.log10());
    }

    #[test]
    fn enumerate_respects_limit() {
        let g = ladder(4, 4); // 256 paths
        assert_eq!(enumerate_paths(&g, 10).len(), 10);
        assert_eq!(enumerate_paths(&g, 1000).len(), 256);
    }

    #[test]
    fn enumerated_paths_are_possible_paths() {
        let g = ladder(3, 2);
        for p in enumerate_paths(&g, 100) {
            assert_eq!(p[0], g.entry());
            for w in p.windows(2) {
                assert!(g.succ(w[0]).contains(&w[1]), "broken edge");
            }
            assert!(g.succ(*p.last().unwrap()).is_empty(), "not maximal");
        }
    }

    #[test]
    fn count_between_specific_nodes() {
        let g = ladder(2, 3);
        // From entry to the first join node: 3 paths.
        let order = g.topo_order();
        // First join is the node right after the 3 stage-one predicates.
        let join = order[4];
        assert_eq!(
            count_paths_between(&g, g.entry(), Some(join)),
            BigUint::from_u64(3)
        );
    }
}
