//! k-packet bounded unrolling with register state threaded between copies.
//!
//! Meissa §4 models a register cell `reg[i]` as an unconstrained stateless
//! variable `REG:reg-POS:i` — sound for a single packet, but blind to any
//! behaviour that depends on what an *earlier* packet stored. This module
//! removes that blindness for bounded sequences: the program CFG is cloned
//! `k` times, every non-register field of copy `i` is renamed with a
//! `pkt{i}.` prefix, and the register fields are left *shared* across all
//! copies. Because symbolic execution evaluates one concatenated path
//! through all `k` copies with a single value environment, a register write
//! in copy `i−1` shadows the register's symbolic input for every read in
//! copy `i` — packet *i*'s reads are constrained to packet *i−1*'s writes
//! with no extra encoding at all. Initial state is either zeroed (a chain of
//! `REG ← 0` assignments prepended before copy 0, matching what a freshly
//! booted target holds) or left fully symbolic.
//!
//! The renaming preserves the field classifiers: `pkt0.hdr.ipv4.$valid`
//! still ends with `.$valid`, and auxiliary fields keep their leading `@`
//! (`@pkt0.…`). Register fields (`REG:` prefix) are never renamed — sharing
//! their ids between copies *is* the state-threading encoding.

use crate::cfg::{Cfg, Node, NodeId, PipelineInfo, RuleSite};
use crate::exp::{AExp, BExp, Stmt};
use crate::fields::{FieldId, FieldTable};
use meissa_num::Bv;
use std::collections::HashMap;

/// The name prefix given to register cell fields by the frontend (§4).
pub const REGISTER_FIELD_PREFIX: &str = "REG:";

/// True if a field name denotes a register cell (`REG:name-POS:idx`).
pub fn is_register_field(name: &str) -> bool {
    name.starts_with(REGISTER_FIELD_PREFIX)
}

/// The per-copy rename applied to non-register fields: `pkt{i}.{name}`,
/// keeping a leading `@` (summary auxiliary marker) at the front.
pub fn sequence_field_name(copy: usize, name: &str) -> String {
    match name.strip_prefix('@') {
        Some(rest) => format!("@pkt{copy}.{rest}"),
        None => format!("pkt{copy}.{name}"),
    }
}

/// How the initial register state (before packet 0) is constrained.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InitialState {
    /// Every register cell starts at zero — what a freshly booted target
    /// holds, and therefore what a concrete driver can replay.
    Zero,
    /// Register cells start unconstrained (the §4 stateless model, applied
    /// only to the state *before* the sequence).
    Symbolic,
}

/// A program CFG unrolled for a k-packet sequence, plus the field mapping
/// needed to split unrolled states back into per-packet states.
#[derive(Clone, Debug)]
pub struct UnrolledCfg {
    /// The concatenated graph: copy 0's leaves feed copy 1's entry, etc.
    pub cfg: Cfg,
    /// Number of packet copies.
    pub k: usize,
    /// `copy_field[i][f.0 as usize]` is the unrolled-table id that original
    /// field `f` maps to in copy `i`. Register fields map to the *same* id
    /// in every copy.
    pub copy_field: Vec<Vec<FieldId>>,
    /// The register cell fields, as ids in the unrolled table (shared by
    /// all copies), in original interning order.
    pub registers: Vec<FieldId>,
}

impl UnrolledCfg {
    /// The unrolled-table id of original field `f` in copy `copy`.
    pub fn field_in_copy(&self, copy: usize, f: FieldId) -> FieldId {
        self.copy_field[copy][f.0 as usize]
    }
}

/// Unrolls `cfg` into `k` concatenated copies with shared register fields.
///
/// Node `j` of copy `i` has id `i·n + j` (where `n = cfg.num_nodes()`), so
/// `unrolled_node.0 / n` recovers the packet index of any node on a path.
/// Every reachable leaf of copy `i` gains an edge to copy `i+1`'s entry.
/// With [`InitialState::Zero`], a chain of `REG ← 0` assignment nodes (ids
/// `k·n` onward) is prepended and becomes the new entry.
///
/// # Panics
/// Panics if `k == 0`.
pub fn unroll(cfg: &Cfg, k: usize, init: InitialState) -> UnrolledCfg {
    assert!(k >= 1, "cannot unroll to zero packets");
    let n = cfg.num_nodes();

    // 1. Per-copy field tables. Registers intern once under their original
    //    name (idempotent), everything else under the pkt{i}. rename.
    let mut fields = FieldTable::new();
    let mut copy_field: Vec<Vec<FieldId>> = Vec::with_capacity(k);
    let mut registers: Vec<FieldId> = Vec::new();
    for copy in 0..k {
        let mut map = Vec::with_capacity(cfg.fields.len());
        for f in cfg.fields.iter() {
            let name = cfg.fields.name(f);
            let w = cfg.fields.width(f);
            let id = if is_register_field(name) {
                let id = fields.intern(name, w);
                if copy == 0 {
                    registers.push(id);
                }
                id
            } else {
                fields.intern(&sequence_field_name(copy, name), w)
            };
            map.push(id);
        }
        copy_field.push(map);
    }

    // 2. Clone nodes per copy, remapping fields and offsetting edges.
    let mut nodes: Vec<Node> = Vec::with_capacity(k * n);
    for copy in 0..k {
        let map = &copy_field[copy];
        let off = (copy * n) as u32;
        for j in 0..n {
            let orig = cfg.node(NodeId(j as u32));
            nodes.push(Node {
                stmt: remap_stmt(&orig.stmt, map),
                succ: orig.succ.iter().map(|s| NodeId(s.0 + off)).collect(),
            });
        }
    }

    // 3. Wire each copy's reachable leaves to the next copy's entry.
    let leaves: Vec<NodeId> = cfg
        .reachable()
        .into_iter()
        .filter(|&nid| cfg.succ(nid).is_empty())
        .collect();
    for copy in 0..k.saturating_sub(1) {
        let off = (copy * n) as u32;
        let next_entry = NodeId(cfg.entry().0 + ((copy + 1) * n) as u32);
        for &leaf in &leaves {
            nodes[(leaf.0 + off) as usize].succ.push(next_entry);
        }
    }

    // 4. Initial register state.
    let mut entry = NodeId(cfg.entry().0);
    if init == InitialState::Zero && !registers.is_empty() {
        // Chain of REG ← 0 nodes in front of copy 0, in register order.
        let mut prev: Option<usize> = None;
        let mut first: Option<usize> = None;
        for &reg in &registers {
            let idx = nodes.len();
            nodes.push(Node {
                stmt: Stmt::Assign(reg, AExp::Const(Bv::new(fields.width(reg), 0))),
                succ: Vec::new(),
            });
            if let Some(p) = prev {
                nodes[p].succ.push(NodeId(idx as u32));
            }
            first.get_or_insert(idx);
            prev = Some(idx);
        }
        nodes[prev.unwrap()].succ.push(entry);
        entry = NodeId(first.unwrap() as u32);
    }

    // 5. Pipelines and raw guards, per copy.
    let mut pipelines: Vec<PipelineInfo> = Vec::with_capacity(k * cfg.pipelines().len());
    for copy in 0..k {
        let off = (copy * n) as u32;
        for p in cfg.pipelines() {
            pipelines.push(PipelineInfo {
                name: format!("pkt{copy}.{}", p.name),
                entry: NodeId(p.entry.0 + off),
                exit: NodeId(p.exit.0 + off),
            });
        }
    }
    let mut raw_guards: HashMap<NodeId, BExp> = HashMap::new();
    for copy in 0..k {
        let map = &copy_field[copy];
        let off = (copy * n) as u32;
        for j in 0..n {
            if let Some(g) = cfg.raw_guard(NodeId(j as u32)) {
                raw_guards.insert(NodeId(j as u32 + off), remap_bexp(g, map));
            }
        }
    }

    // 6. Rule-coverage sites, per copy. Table names are kept un-prefixed:
    //    every copy exercises the *same* installed rule set, so hits from
    //    any packet of the sequence accrue to the one physical table.
    let mut rule_sites: HashMap<NodeId, Vec<RuleSite>> = HashMap::new();
    for copy in 0..k {
        let off = (copy * n) as u32;
        for (nid, sites) in cfg.rule_site_map() {
            rule_sites.insert(NodeId(nid.0 + off), sites.clone());
        }
    }

    UnrolledCfg {
        cfg: Cfg::from_parts(nodes, entry, fields, pipelines, raw_guards, rule_sites),
        k,
        copy_field,
        registers,
    }
}

fn remap_aexp(e: &AExp, map: &[FieldId]) -> AExp {
    match e {
        AExp::Field(f) => AExp::Field(map[f.0 as usize]),
        AExp::Const(v) => AExp::Const(v.clone()),
        AExp::Bin(op, a, b) => AExp::Bin(
            *op,
            Box::new(remap_aexp(a, map)),
            Box::new(remap_aexp(b, map)),
        ),
        AExp::Not(a) => AExp::Not(Box::new(remap_aexp(a, map))),
        AExp::Shl(a, s) => AExp::Shl(Box::new(remap_aexp(a, map)), *s),
        AExp::Shr(a, s) => AExp::Shr(Box::new(remap_aexp(a, map)), *s),
        AExp::Hash(alg, w, args) => {
            AExp::Hash(*alg, *w, args.iter().map(|a| remap_aexp(a, map)).collect())
        }
    }
}

fn remap_bexp(e: &BExp, map: &[FieldId]) -> BExp {
    match e {
        BExp::True => BExp::True,
        BExp::False => BExp::False,
        BExp::Cmp(op, a, b) => BExp::Cmp(*op, remap_aexp(a, map), remap_aexp(b, map)),
        BExp::Bin(op, a, b) => BExp::Bin(
            *op,
            Box::new(remap_bexp(a, map)),
            Box::new(remap_bexp(b, map)),
        ),
        BExp::Not(a) => BExp::Not(Box::new(remap_bexp(a, map))),
    }
}

fn remap_stmt(s: &Stmt, map: &[FieldId]) -> Stmt {
    match s {
        Stmt::Assign(f, e) => Stmt::Assign(map[f.0 as usize], remap_aexp(e, map)),
        Stmt::Assume(b) => Stmt::Assume(remap_bexp(b, map)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::CfgBuilder;
    use crate::eval::ConcreteState;
    use crate::exp::CmpOp;

    /// in ← x; reg ← reg + in  (an accumulator over packets)
    fn accumulator() -> Cfg {
        let mut b = CfgBuilder::new();
        let x = b.fields_mut().intern("hdr.x", 8);
        let reg = b.fields_mut().intern("REG:acc-POS:0", 8);
        b.begin_pipeline("ingress0");
        b.stmt(Stmt::Assign(
            reg,
            AExp::bin(crate::exp::AOp::Add, AExp::Field(reg), AExp::Field(x)),
        ));
        b.end_pipeline();
        b.finish()
    }

    #[test]
    fn registers_shared_and_packets_renamed() {
        let cfg = accumulator();
        let u = unroll(&cfg, 3, InitialState::Zero);
        assert_eq!(u.k, 3);
        let t = &u.cfg.fields;
        assert!(t.get("pkt0.hdr.x").is_some());
        assert!(t.get("pkt1.hdr.x").is_some());
        assert!(t.get("pkt2.hdr.x").is_some());
        assert!(t.get("hdr.x").is_none(), "unprefixed name must not leak");
        // One shared register id across all copies.
        let reg = t.get("REG:acc-POS:0").unwrap();
        let orig = cfg.fields.get("REG:acc-POS:0").unwrap();
        for copy in 0..3 {
            assert_eq!(u.field_in_copy(copy, orig), reg);
        }
        assert_eq!(u.registers, vec![reg]);
        // Validity/aux classifiers survive the rename.
        let mut ft = FieldTable::new();
        let v = ft.intern(&sequence_field_name(1, "hdr.ipv4.$valid"), 1);
        let a = ft.intern(&sequence_field_name(0, "@ppl1.hdr.x"), 8);
        assert!(ft.is_validity(v));
        assert!(ft.is_auxiliary(a));
    }

    #[test]
    fn unrolled_graph_is_wellformed() {
        let cfg = accumulator();
        for k in 1..=3 {
            for init in [InitialState::Zero, InitialState::Symbolic] {
                let u = unroll(&cfg, k, init);
                assert!(
                    u.cfg.validate().is_empty(),
                    "k={k} {init:?}: {:?}",
                    u.cfg.validate()
                );
            }
        }
        // Pipelines appear once per copy, with per-copy names.
        let u = unroll(&cfg, 2, InitialState::Zero);
        assert_eq!(u.cfg.pipelines().len(), 2);
        assert!(u.cfg.find_pipeline("pkt0.ingress0").is_some());
        assert!(u.cfg.find_pipeline("pkt1.ingress0").is_some());
    }

    #[test]
    fn state_threads_between_copies() {
        // Evaluate the single path through a 3-packet unroll of the
        // accumulator: reg starts 0, then accumulates each packet's x.
        let cfg = accumulator();
        let u = unroll(&cfg, 3, InitialState::Zero);
        let t = &u.cfg.fields;
        let mut st = ConcreteState::new();
        st.set(t, t.get("pkt0.hdr.x").unwrap(), Bv::new(8, 5));
        st.set(t, t.get("pkt1.hdr.x").unwrap(), Bv::new(8, 7));
        st.set(t, t.get("pkt2.hdr.x").unwrap(), Bv::new(8, 11));

        // Walk the (linear) unrolled graph.
        let mut at = u.cfg.entry();
        loop {
            crate::eval::eval_stmt(t, &mut st, at, u.cfg.stmt(at)).unwrap();
            match u.cfg.succ(at).first() {
                Some(&next) => at = next,
                None => break,
            }
        }
        let reg = t.get("REG:acc-POS:0").unwrap();
        assert_eq!(st.get(t, reg), Bv::new(8, 23), "0+5+7+11");
    }

    #[test]
    fn symbolic_init_omits_zero_chain() {
        let cfg = accumulator();
        let z = unroll(&cfg, 2, InitialState::Zero);
        let s = unroll(&cfg, 2, InitialState::Symbolic);
        assert_eq!(z.cfg.num_nodes(), s.cfg.num_nodes() + 1);
        assert_eq!(s.cfg.entry().0 as usize, cfg.entry().0 as usize);
        // Zero-init entry is the REG ← 0 node.
        match z.cfg.stmt(z.cfg.entry()) {
            Stmt::Assign(f, AExp::Const(v)) => {
                assert_eq!(*f, z.registers[0]);
                assert_eq!(*v, Bv::new(8, 0));
            }
            other => panic!("unexpected entry stmt {other:?}"),
        }
    }

    #[test]
    fn guards_and_branches_remap_per_copy() {
        let mut b = CfgBuilder::new();
        let x = b.fields_mut().intern("hdr.x", 8);
        let raw = BExp::Cmp(CmpOp::Eq, AExp::Field(x), AExp::Const(Bv::new(8, 1)));
        b.stmt_with_raw(Stmt::Assume(raw.clone()), raw);
        let cfg = b.finish();

        let u = unroll(&cfg, 2, InitialState::Symbolic);
        let x1 = u.cfg.fields.get("pkt1.hdr.x").unwrap();
        let n = cfg.num_nodes() as u32;
        let g = u.cfg.raw_guard(NodeId(n)).expect("copy-1 guard");
        match g {
            BExp::Cmp(CmpOp::Eq, AExp::Field(f), _) => assert_eq!(*f, x1),
            other => panic!("unexpected guard {other:?}"),
        }
    }

    #[test]
    fn rule_sites_propagate_per_copy_with_original_table_names() {
        use crate::cfg::RuleArm;
        let mut b = CfgBuilder::new();
        let x = b.fields_mut().intern("hdr.x", 8);
        let raw = BExp::Cmp(CmpOp::Eq, AExp::Field(x), AExp::Const(Bv::new(8, 1)));
        let arm = b.stmt_with_raw(Stmt::Assume(raw.clone()), raw);
        b.mark_rule_site(arm, "t0", RuleArm::Rule(0));
        let cfg = b.finish();

        let u = unroll(&cfg, 2, InitialState::Symbolic);
        let n = cfg.num_nodes() as u32;
        for copy in 0..2u32 {
            let sites = u.cfg.rule_sites(NodeId(arm.0 + copy * n));
            assert_eq!(sites.len(), 1, "copy {copy}");
            assert_eq!(sites[0].table, "t0", "table name stays un-prefixed");
            assert_eq!(sites[0].arm, RuleArm::Rule(0));
        }
        assert_eq!(u.cfg.rule_site_map().len(), 2);
    }

    #[test]
    #[should_panic(expected = "zero packets")]
    fn k_zero_panics() {
        unroll(&accumulator(), 0, InitialState::Zero);
    }
}
