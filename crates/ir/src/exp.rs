//! Expression and statement syntax — the grammar of paper Fig. 3.
//!
//! `aexp` is bitvector arithmetic over header fields (`+ - & | ^` plus
//! constant shifts, which production P4 programs use for tunnel header
//! math), `bexp` is boolean structure over comparisons, and `stmt` is
//! either an action (`field ← aexp`) or a predicate (`assume bexp`).
//!
//! The one extension beyond Fig. 3 is [`AExp::Hash`]: §4 of the paper makes
//! hashing a special case (SMT solvers handle it poorly), and the symbolic
//! executor needs to *see* hash applications to apply the paper's
//! concrete-fold / arbitrary-value-plus-post-filter treatment. The concrete
//! evaluator computes hashes exactly.

use crate::fields::{FieldId, FieldTable};
use crate::hash::HashAlg;
use meissa_num::Bv;
use meissa_testkit::json::{tagged, untag, FromJson, Json, JsonError, ToJson};

/// Arithmetic (bitvector) operators — `aop` in Fig. 3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AOp {
    /// Wrapping addition, `+`.
    Add,
    /// Wrapping subtraction, `-`.
    Sub,
    /// Bitwise AND, `&`.
    And,
    /// Bitwise OR, `|`.
    Or,
    /// Bitwise XOR, `^`.
    Xor,
}

/// Boolean connectives — `bop` in Fig. 3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BOp {
    /// Conjunction, `&&`.
    And,
    /// Disjunction, `||`.
    Or,
}

/// Comparison operators — `cop` in Fig. 3 (`<=` and `>=` appear in range
/// table matches).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// unsigned `<`
    Lt,
    /// unsigned `>`
    Gt,
    /// unsigned `<=`
    Le,
    /// unsigned `>=`
    Ge,
}

/// Arithmetic expressions — `aexp` in Fig. 3.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum AExp {
    /// A header field variable.
    Field(FieldId),
    /// A concrete value.
    Const(Bv),
    /// A binary arithmetic operation.
    Bin(AOp, Box<AExp>, Box<AExp>),
    /// Bitwise NOT.
    Not(Box<AExp>),
    /// Logical shift left by a constant.
    Shl(Box<AExp>, u16),
    /// Logical shift right by a constant.
    Shr(Box<AExp>, u16),
    /// A hash of the argument expressions, producing `width` bits (§4).
    Hash(HashAlg, u16, Vec<AExp>),
}

impl AExp {
    /// Convenience constructor for a binary operation.
    pub fn bin(op: AOp, a: AExp, b: AExp) -> AExp {
        AExp::Bin(op, Box::new(a), Box::new(b))
    }

    /// The width of the expression in bits.
    pub fn width(&self, fields: &FieldTable) -> u16 {
        match self {
            AExp::Field(f) => fields.width(*f),
            AExp::Const(v) => v.width(),
            AExp::Bin(_, a, _) => a.width(fields),
            AExp::Not(a) | AExp::Shl(a, _) | AExp::Shr(a, _) => a.width(fields),
            AExp::Hash(_, w, _) => *w,
        }
    }

    /// Collects every field referenced by the expression into `out`.
    pub fn fields_into(&self, out: &mut Vec<FieldId>) {
        match self {
            AExp::Field(f) => out.push(*f),
            AExp::Const(_) => {}
            AExp::Bin(_, a, b) => {
                a.fields_into(out);
                b.fields_into(out);
            }
            AExp::Not(a) | AExp::Shl(a, _) | AExp::Shr(a, _) => a.fields_into(out),
            AExp::Hash(_, _, args) => {
                for a in args {
                    a.fields_into(out);
                }
            }
        }
    }

    /// True if the expression contains a hash application.
    pub fn contains_hash(&self) -> bool {
        match self {
            AExp::Hash(..) => true,
            AExp::Field(_) | AExp::Const(_) => false,
            AExp::Bin(_, a, b) => a.contains_hash() || b.contains_hash(),
            AExp::Not(a) | AExp::Shl(a, _) | AExp::Shr(a, _) => a.contains_hash(),
        }
    }

    /// Pretty-prints with field names resolved.
    pub fn display(&self, fields: &FieldTable) -> String {
        match self {
            AExp::Field(f) => fields.name(*f).to_string(),
            AExp::Const(v) => v.to_string(),
            AExp::Bin(op, a, b) => {
                let sym = match op {
                    AOp::Add => "+",
                    AOp::Sub => "-",
                    AOp::And => "&",
                    AOp::Or => "|",
                    AOp::Xor => "^",
                };
                format!("({} {} {})", a.display(fields), sym, b.display(fields))
            }
            AExp::Not(a) => format!("~{}", a.display(fields)),
            AExp::Shl(a, n) => format!("({} << {})", a.display(fields), n),
            AExp::Shr(a, n) => format!("({} >> {})", a.display(fields), n),
            AExp::Hash(alg, w, args) => {
                let inner: Vec<String> = args.iter().map(|a| a.display(fields)).collect();
                format!("{alg:?}<{w}>({})", inner.join(", "))
            }
        }
    }
}

/// Boolean expressions — `bexp` in Fig. 3.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum BExp {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// A comparison of two arithmetic expressions.
    Cmp(CmpOp, AExp, AExp),
    /// A binary boolean composition.
    Bin(BOp, Box<BExp>, Box<BExp>),
    /// Negation, `~` in Fig. 3.
    Not(Box<BExp>),
}

impl BExp {
    /// Convenience constructor for conjunction.
    pub fn and(a: BExp, b: BExp) -> BExp {
        match (&a, &b) {
            (BExp::True, _) => b,
            (_, BExp::True) => a,
            (BExp::False, _) | (_, BExp::False) => BExp::False,
            _ => BExp::Bin(BOp::And, Box::new(a), Box::new(b)),
        }
    }

    /// Convenience constructor for disjunction.
    pub fn or(a: BExp, b: BExp) -> BExp {
        match (&a, &b) {
            (BExp::False, _) => b,
            (_, BExp::False) => a,
            (BExp::True, _) | (_, BExp::True) => BExp::True,
            _ => BExp::Bin(BOp::Or, Box::new(a), Box::new(b)),
        }
    }

    /// Convenience constructor for negation.
    #[allow(clippy::should_implement_trait)] // domain op, not std::ops::Not
    pub fn not(a: BExp) -> BExp {
        match a {
            BExp::True => BExp::False,
            BExp::False => BExp::True,
            BExp::Not(inner) => *inner,
            _ => BExp::Not(Box::new(a)),
        }
    }

    /// Equality comparison helper.
    pub fn eq(a: AExp, b: AExp) -> BExp {
        BExp::Cmp(CmpOp::Eq, a, b)
    }

    /// Collects every field referenced by the expression into `out`.
    pub fn fields_into(&self, out: &mut Vec<FieldId>) {
        match self {
            BExp::True | BExp::False => {}
            BExp::Cmp(_, a, b) => {
                a.fields_into(out);
                b.fields_into(out);
            }
            BExp::Bin(_, a, b) => {
                a.fields_into(out);
                b.fields_into(out);
            }
            BExp::Not(a) => a.fields_into(out),
        }
    }

    /// True if the expression contains a hash application.
    pub fn contains_hash(&self) -> bool {
        match self {
            BExp::True | BExp::False => false,
            BExp::Cmp(_, a, b) => a.contains_hash() || b.contains_hash(),
            BExp::Bin(_, a, b) => a.contains_hash() || b.contains_hash(),
            BExp::Not(a) => a.contains_hash(),
        }
    }

    /// Pretty-prints with field names resolved.
    pub fn display(&self, fields: &FieldTable) -> String {
        match self {
            BExp::True => "true".to_string(),
            BExp::False => "false".to_string(),
            BExp::Cmp(op, a, b) => {
                let sym = match op {
                    CmpOp::Eq => "==",
                    CmpOp::Ne => "!=",
                    CmpOp::Lt => "<",
                    CmpOp::Gt => ">",
                    CmpOp::Le => "<=",
                    CmpOp::Ge => ">=",
                };
                format!("({} {} {})", a.display(fields), sym, b.display(fields))
            }
            BExp::Bin(op, a, b) => {
                let sym = match op {
                    BOp::And => "&&",
                    BOp::Or => "||",
                };
                format!("({} {} {})", a.display(fields), sym, b.display(fields))
            }
            BExp::Not(a) => format!("!{}", a.display(fields)),
        }
    }
}

/// Statements — `stmt` in Fig. 3.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Stmt {
    /// An action: `field ← aexp`.
    Assign(FieldId, AExp),
    /// A predicate: `assume bexp`.
    Assume(BExp),
}

impl Stmt {
    /// True for a no-op statement (`assume true`), used as region markers.
    pub fn is_nop(&self) -> bool {
        matches!(self, Stmt::Assume(BExp::True))
    }

    /// Pretty-prints with field names resolved.
    pub fn display(&self, fields: &FieldTable) -> String {
        match self {
            Stmt::Assign(f, e) => format!("{} ← {}", fields.name(*f), e.display(fields)),
            Stmt::Assume(b) => format!("assume {}", b.display(fields)),
        }
    }
}

impl ToJson for AOp {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                AOp::Add => "Add",
                AOp::Sub => "Sub",
                AOp::And => "And",
                AOp::Or => "Or",
                AOp::Xor => "Xor",
            }
            .into(),
        )
    }
}

impl FromJson for AOp {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str().map_err(|e| e.context("AOp"))? {
            "Add" => Ok(AOp::Add),
            "Sub" => Ok(AOp::Sub),
            "And" => Ok(AOp::And),
            "Or" => Ok(AOp::Or),
            "Xor" => Ok(AOp::Xor),
            other => Err(JsonError::new(format!("unknown AOp `{other}`"))),
        }
    }
}

impl ToJson for BOp {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                BOp::And => "And",
                BOp::Or => "Or",
            }
            .into(),
        )
    }
}

impl FromJson for BOp {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str().map_err(|e| e.context("BOp"))? {
            "And" => Ok(BOp::And),
            "Or" => Ok(BOp::Or),
            other => Err(JsonError::new(format!("unknown BOp `{other}`"))),
        }
    }
}

impl ToJson for CmpOp {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                CmpOp::Eq => "Eq",
                CmpOp::Ne => "Ne",
                CmpOp::Lt => "Lt",
                CmpOp::Gt => "Gt",
                CmpOp::Le => "Le",
                CmpOp::Ge => "Ge",
            }
            .into(),
        )
    }
}

impl FromJson for CmpOp {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str().map_err(|e| e.context("CmpOp"))? {
            "Eq" => Ok(CmpOp::Eq),
            "Ne" => Ok(CmpOp::Ne),
            "Lt" => Ok(CmpOp::Lt),
            "Gt" => Ok(CmpOp::Gt),
            "Le" => Ok(CmpOp::Le),
            "Ge" => Ok(CmpOp::Ge),
            other => Err(JsonError::new(format!("unknown CmpOp `{other}`"))),
        }
    }
}

impl ToJson for AExp {
    fn to_json(&self) -> Json {
        match self {
            AExp::Field(f) => tagged("Field", f.to_json()),
            AExp::Const(v) => tagged("Const", v.to_json()),
            AExp::Bin(op, a, b) => {
                tagged("Bin", Json::Arr(vec![op.to_json(), a.to_json(), b.to_json()]))
            }
            AExp::Not(a) => tagged("Not", a.to_json()),
            AExp::Shl(a, n) => tagged("Shl", Json::Arr(vec![a.to_json(), n.to_json()])),
            AExp::Shr(a, n) => tagged("Shr", Json::Arr(vec![a.to_json(), n.to_json()])),
            AExp::Hash(alg, w, args) => tagged(
                "Hash",
                Json::Arr(vec![alg.to_json(), w.to_json(), args.to_json()]),
            ),
        }
    }
}

impl FromJson for AExp {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = untag(v).map_err(|e| e.context("AExp"))?;
        match tag {
            "Field" => Ok(AExp::Field(FieldId::from_json(payload)?)),
            "Const" => Ok(AExp::Const(Bv::from_json(payload)?)),
            "Bin" => match payload.as_arr()? {
                [op, a, b] => Ok(AExp::bin(
                    AOp::from_json(op)?,
                    AExp::from_json(a)?,
                    AExp::from_json(b)?,
                )),
                _ => Err(JsonError::new("AExp::Bin needs [op, a, b]")),
            },
            "Not" => Ok(AExp::Not(Box::new(AExp::from_json(payload)?))),
            "Shl" => match payload.as_arr()? {
                [a, n] => Ok(AExp::Shl(Box::new(AExp::from_json(a)?), u16::from_json(n)?)),
                _ => Err(JsonError::new("AExp::Shl needs [a, n]")),
            },
            "Shr" => match payload.as_arr()? {
                [a, n] => Ok(AExp::Shr(Box::new(AExp::from_json(a)?), u16::from_json(n)?)),
                _ => Err(JsonError::new("AExp::Shr needs [a, n]")),
            },
            "Hash" => match payload.as_arr()? {
                [alg, w, args] => Ok(AExp::Hash(
                    HashAlg::from_json(alg)?,
                    u16::from_json(w)?,
                    Vec::<AExp>::from_json(args)?,
                )),
                _ => Err(JsonError::new("AExp::Hash needs [alg, width, args]")),
            },
            other => Err(JsonError::new(format!("unknown AExp variant `{other}`"))),
        }
    }
}

impl ToJson for BExp {
    fn to_json(&self) -> Json {
        match self {
            BExp::True => Json::Str("True".into()),
            BExp::False => Json::Str("False".into()),
            BExp::Cmp(op, a, b) => {
                tagged("Cmp", Json::Arr(vec![op.to_json(), a.to_json(), b.to_json()]))
            }
            BExp::Bin(op, a, b) => {
                tagged("Bin", Json::Arr(vec![op.to_json(), a.to_json(), b.to_json()]))
            }
            BExp::Not(a) => tagged("Not", a.to_json()),
        }
    }
}

impl FromJson for BExp {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = untag(v).map_err(|e| e.context("BExp"))?;
        match tag {
            "True" => Ok(BExp::True),
            "False" => Ok(BExp::False),
            "Cmp" => match payload.as_arr()? {
                [op, a, b] => Ok(BExp::Cmp(
                    CmpOp::from_json(op)?,
                    AExp::from_json(a)?,
                    AExp::from_json(b)?,
                )),
                _ => Err(JsonError::new("BExp::Cmp needs [op, a, b]")),
            },
            // Decode structurally (no smart constructor): round-trips must
            // preserve the exact tree the encoder saw.
            "Bin" => match payload.as_arr()? {
                [op, a, b] => Ok(BExp::Bin(
                    BOp::from_json(op)?,
                    Box::new(BExp::from_json(a)?),
                    Box::new(BExp::from_json(b)?),
                )),
                _ => Err(JsonError::new("BExp::Bin needs [op, a, b]")),
            },
            "Not" => Ok(BExp::Not(Box::new(BExp::from_json(payload)?))),
            other => Err(JsonError::new(format!("unknown BExp variant `{other}`"))),
        }
    }
}

impl ToJson for Stmt {
    fn to_json(&self) -> Json {
        match self {
            Stmt::Assign(f, e) => tagged("Assign", Json::Arr(vec![f.to_json(), e.to_json()])),
            Stmt::Assume(b) => tagged("Assume", b.to_json()),
        }
    }
}

impl FromJson for Stmt {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let (tag, payload) = untag(v).map_err(|e| e.context("Stmt"))?;
        match tag {
            "Assign" => match payload.as_arr()? {
                [f, e] => Ok(Stmt::Assign(FieldId::from_json(f)?, AExp::from_json(e)?)),
                _ => Err(JsonError::new("Stmt::Assign needs [field, exp]")),
            },
            "Assume" => Ok(Stmt::Assume(BExp::from_json(payload)?)),
            other => Err(JsonError::new(format!("unknown Stmt variant `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (FieldTable, FieldId, FieldId) {
        let mut t = FieldTable::new();
        let a = t.intern("hdr.ipv4.src_addr", 32);
        let b = t.intern("hdr.ipv4.dst_addr", 32);
        (t, a, b)
    }

    #[test]
    fn width_propagates() {
        let (t, a, _) = table();
        let e = AExp::bin(AOp::Add, AExp::Field(a), AExp::Const(Bv::new(32, 1)));
        assert_eq!(e.width(&t), 32);
        assert_eq!(AExp::Hash(HashAlg::Crc16, 16, vec![AExp::Field(a)]).width(&t), 16);
    }

    #[test]
    fn field_collection() {
        let (_, a, b) = table();
        let e = BExp::eq(
            AExp::bin(AOp::Xor, AExp::Field(a), AExp::Field(b)),
            AExp::Const(Bv::zero(32)),
        );
        let mut out = Vec::new();
        e.fields_into(&mut out);
        assert_eq!(out, vec![a, b]);
    }

    #[test]
    fn bexp_smart_constructors() {
        let (_, a, _) = table();
        let cmp = BExp::eq(AExp::Field(a), AExp::Const(Bv::zero(32)));
        assert_eq!(BExp::and(BExp::True, cmp.clone()), cmp);
        assert_eq!(BExp::and(cmp.clone(), BExp::False), BExp::False);
        assert_eq!(BExp::or(BExp::False, cmp.clone()), cmp);
        assert_eq!(BExp::or(cmp.clone(), BExp::True), BExp::True);
        assert_eq!(BExp::not(BExp::not(cmp.clone())), cmp);
    }

    #[test]
    fn hash_detection() {
        let (_, a, b) = table();
        let plain = AExp::bin(AOp::Add, AExp::Field(a), AExp::Field(b));
        assert!(!plain.contains_hash());
        let hashed = AExp::bin(
            AOp::And,
            AExp::Hash(HashAlg::Crc32, 32, vec![AExp::Field(a)]),
            AExp::Field(b),
        );
        assert!(hashed.contains_hash());
        assert!(BExp::eq(hashed, AExp::Field(b)).contains_hash());
    }

    #[test]
    fn display_resolves_names() {
        let (t, a, _) = table();
        let s = Stmt::Assign(a, AExp::Const(Bv::new(32, 0xc0a80001)));
        let d = s.display(&t);
        assert!(d.contains("hdr.ipv4.src_addr"), "{d}");
        assert!(d.contains('←'), "{d}");
    }

    #[test]
    fn nop_detection() {
        let (_, a, _) = table();
        assert!(Stmt::Assume(BExp::True).is_nop());
        assert!(!Stmt::Assume(BExp::False).is_nop());
        assert!(!Stmt::Assign(a, AExp::Const(Bv::zero(32))).is_nop());
    }

    #[test]
    fn stmt_json_roundtrip() {
        let (_, a, b) = table();
        let stmts = [
            Stmt::Assume(BExp::True),
            Stmt::Assign(
                a,
                AExp::Hash(
                    HashAlg::Crc32,
                    32,
                    vec![AExp::Shl(Box::new(AExp::Field(b)), 3)],
                ),
            ),
            Stmt::Assume(BExp::not(BExp::eq(
                AExp::bin(AOp::Xor, AExp::Field(a), AExp::Field(b)),
                AExp::Const(Bv::zero(32)),
            ))),
        ];
        for s in stmts {
            let text = s.to_json_text();
            assert_eq!(Stmt::from_json_text(&text).unwrap(), s, "via `{text}`");
        }
    }
}
