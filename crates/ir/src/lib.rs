//! The control flow graph intermediate representation of paper §3.1.
//!
//! A data plane program — P4lite source plus its installed table rules plus
//! the multi-pipeline topology — is compiled (by `meissa-lang`) into one
//! acyclic CFG whose nodes each carry a single statement (Fig. 3):
//!
//! * **predicate** nodes, `assume bexp` — branch conditions from `if`
//!   statements, parser `select` arms, and table rule match conditions;
//! * **action** nodes, `field ← aexp` — assignments from table actions and
//!   parser extraction.
//!
//! Pipelines appear as single-entry / single-exit regions delimited by
//! no-op marker nodes, which is what Algorithm 2's code summary operates on.
//!
//! The crate also provides the paper's concrete evaluation relation
//! (Fig. 4, [`eval`]), possible/valid path machinery (Definitions 1 and 2),
//! and DAG path counting with arbitrary precision (the `10^390` numbers of
//! Fig. 11c/12c).

pub mod cfg;
pub mod eval;
pub mod exp;
pub mod fields;
pub mod hash;
pub mod paths;
pub mod unroll;

pub use cfg::{Cfg, CfgBuilder, Node, NodeId, PipelineId, PipelineInfo, RuleArm, RuleSite};
pub use eval::{eval_path, eval_stmt, ConcreteState, EvalError};
pub use exp::{AExp, AOp, BExp, BOp, CmpOp, Stmt};
pub use fields::{FieldId, FieldTable};
pub use hash::HashAlg;
pub use paths::{count_paths, count_paths_between, enumerate_paths, PathCounts};
pub use unroll::{
    is_register_field, sequence_field_name, unroll, InitialState, UnrolledCfg,
    REGISTER_FIELD_PREFIX,
};
