//! The control flow graph (Fig. 3: `G ::= (V, v0, succ, code)`).
//!
//! The CFG is a DAG of statement nodes. Pipelines are single-entry /
//! single-exit regions delimited by no-op marker nodes; Algorithm 2's code
//! summary replaces everything strictly between a pipeline's markers with
//! the compact per-valid-path encoding, leaving the markers (and therefore
//! the inter-pipeline wiring) untouched.

use crate::exp::{BExp, Stmt};
use crate::fields::FieldTable;
use meissa_testkit::json::{FromJson, Json, JsonError, ToJson};
use std::collections::{HashMap, VecDeque};

/// A node handle within one [`Cfg`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl ToJson for NodeId {
    fn to_json(&self) -> Json {
        Json::UInt(self.0 as u128)
    }
}

impl FromJson for NodeId {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(NodeId(u32::from_json(v).map_err(|e| e.context("NodeId"))?))
    }
}

/// A pipeline handle within one [`Cfg`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PipelineId(pub u32);

impl ToJson for PipelineId {
    fn to_json(&self) -> Json {
        Json::UInt(self.0 as u128)
    }
}

impl FromJson for PipelineId {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(PipelineId(
            u32::from_json(v).map_err(|e| e.context("PipelineId"))?,
        ))
    }
}

/// One CFG node: a statement plus its successors.
#[derive(Clone, Debug)]
pub struct Node {
    /// The statement executed at this node.
    pub stmt: Stmt,
    /// Successor nodes (empty for terminal nodes).
    pub succ: Vec<NodeId>,
}

impl ToJson for Node {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("stmt".into(), self.stmt.to_json()),
            ("succ".into(), self.succ.to_json()),
        ])
    }
}

impl FromJson for Node {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Node {
            stmt: Stmt::from_json(v.field("stmt")?).map_err(|e| e.context("Node.stmt"))?,
            succ: Vec::<NodeId>::from_json(v.field("succ")?)
                .map_err(|e| e.context("Node.succ"))?,
        })
    }
}

/// Metadata for one pipeline region.
#[derive(Clone, Debug)]
pub struct PipelineInfo {
    /// Human-readable name, e.g. `sw0.ingress0`.
    pub name: String,
    /// The entry marker node (a no-op).
    pub entry: NodeId,
    /// The exit marker node (a no-op).
    pub exit: NodeId,
}

impl ToJson for PipelineInfo {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("entry".into(), self.entry.to_json()),
            ("exit".into(), self.exit.to_json()),
        ])
    }
}

impl FromJson for PipelineInfo {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(PipelineInfo {
            name: String::from_json(v.field("name")?)
                .map_err(|e| e.context("PipelineInfo.name"))?,
            entry: NodeId::from_json(v.field("entry")?)
                .map_err(|e| e.context("PipelineInfo.entry"))?,
            exit: NodeId::from_json(v.field("exit")?)
                .map_err(|e| e.context("PipelineInfo.exit"))?,
        })
    }
}

/// Which arm of a match-action table a predicate node encodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum RuleArm {
    /// Rule `i` of the table's installed rule set (0-based, priority order).
    Rule(u32),
    /// The miss arm: no installed rule matched (default action).
    Miss,
}

impl ToJson for RuleArm {
    fn to_json(&self) -> Json {
        match self {
            RuleArm::Rule(i) => Json::UInt(*i as u128),
            RuleArm::Miss => Json::Str("miss".into()),
        }
    }
}

impl FromJson for RuleArm {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) if s == "miss" => Ok(RuleArm::Miss),
            _ => Ok(RuleArm::Rule(
                u32::from_json(v).map_err(|e| e.context("RuleArm"))?,
            )),
        }
    }
}

/// Coverage-attribution metadata: the table arm a CFG node stands for.
///
/// The frontend marks every table-rule arm node and the miss-arm node with
/// the table name and arm index; code summary re-attaches the sites a
/// summarized path traversed to the path's final encoded node. Either way, a
/// template path attributes rule hits by node lookup alone — no structural
/// guard matching and no solver involvement, so coverage accounting can
/// never perturb exploration.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RuleSite {
    /// Table name as written in the source, e.g. `eip_lookup`.
    pub table: String,
    /// Which arm of that table this node encodes.
    pub arm: RuleArm,
}

impl ToJson for RuleSite {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("table".into(), self.table.to_json()),
            ("arm".into(), self.arm.to_json()),
        ])
    }
}

impl FromJson for RuleSite {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(RuleSite {
            table: String::from_json(v.field("table")?)
                .map_err(|e| e.context("RuleSite.table"))?,
            arm: RuleArm::from_json(v.field("arm")?).map_err(|e| e.context("RuleSite.arm"))?,
        })
    }
}

/// The control flow graph of a whole (multi-pipeline, multi-switch) program.
#[derive(Clone, Debug)]
pub struct Cfg {
    nodes: Vec<Node>,
    entry: NodeId,
    /// Field table shared by every statement in the graph.
    pub fields: FieldTable,
    pipelines: Vec<PipelineInfo>,
    /// Raw (priority-free) guards for predicate nodes that encode table
    /// rules or parser select arms. The `assume` statement of such a node is
    /// `raw ∧ ¬(higher-priority raws)` — the analyzer's flattening of
    /// first-match-wins — while the compiled target evaluates the raw guard
    /// in priority order, which is what hardware does (and what priority
    /// miscompilations perturb).
    raw_guards: HashMap<NodeId, BExp>,
    /// Rule-coverage attribution: which table arms each node stands for.
    /// Frontend-marked arm nodes carry exactly one site; summarized trie
    /// leaves carry the full site list of their encoded path.
    rule_sites: HashMap<NodeId, Vec<RuleSite>>,
}

impl Cfg {
    /// Assembles a graph from raw parts. Crate-internal: used by the
    /// k-packet unroller (`crate::unroll`), which builds node/edge vectors
    /// wholesale rather than through [`CfgBuilder`]'s frontier discipline.
    /// Callers are responsible for producing a graph that passes
    /// [`Cfg::validate`].
    pub(crate) fn from_parts(
        nodes: Vec<Node>,
        entry: NodeId,
        fields: FieldTable,
        pipelines: Vec<PipelineInfo>,
        raw_guards: HashMap<NodeId, BExp>,
        rule_sites: HashMap<NodeId, Vec<RuleSite>>,
    ) -> Cfg {
        Cfg {
            nodes,
            entry,
            fields,
            pipelines,
            raw_guards,
            rule_sites,
        }
    }

    /// The entry node (`v0`).
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// The statement at a node.
    pub fn stmt(&self, id: NodeId) -> &Stmt {
        &self.nodes[id.0 as usize].stmt
    }

    /// The successors of a node (`succ(v)`).
    pub fn succ(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.0 as usize].succ
    }

    /// Total number of nodes ever allocated (including nodes orphaned by
    /// summarization).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes reachable from the entry.
    pub fn num_reachable_nodes(&self) -> usize {
        self.reachable().len()
    }

    /// The declared pipelines, in declaration order.
    pub fn pipelines(&self) -> &[PipelineInfo] {
        &self.pipelines
    }

    /// Pipeline metadata by id.
    pub fn pipeline(&self, id: PipelineId) -> &PipelineInfo {
        &self.pipelines[id.0 as usize]
    }

    /// The raw (priority-free) guard recorded for a predicate node, if any.
    pub fn raw_guard(&self, id: NodeId) -> Option<&BExp> {
        self.raw_guards.get(&id)
    }

    /// The table arms attributed to a node (empty for unmarked nodes).
    pub fn rule_sites(&self, id: NodeId) -> &[RuleSite] {
        self.rule_sites.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The full node → sites attribution map.
    pub fn rule_site_map(&self) -> &HashMap<NodeId, Vec<RuleSite>> {
        &self.rule_sites
    }

    /// Finds a pipeline by name.
    pub fn find_pipeline(&self, name: &str) -> Option<PipelineId> {
        self.pipelines
            .iter()
            .position(|p| p.name == name)
            .map(|i| PipelineId(i as u32))
    }

    /// Nodes reachable from the entry, in DFS preorder.
    pub fn reachable(&self) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.entry];
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n.0 as usize], true) {
                continue;
            }
            out.push(n);
            for &s in &self.nodes[n.0 as usize].succ {
                stack.push(s);
            }
        }
        out
    }

    /// Topological order of all reachable nodes.
    ///
    /// # Panics
    /// Panics if the reachable graph contains a cycle — CFGs are acyclic by
    /// construction (§3.1: recursion is unrolled), so a cycle is a frontend
    /// bug.
    pub fn topo_order(&self) -> Vec<NodeId> {
        let reach = self.reachable();
        let mut indeg: HashMap<NodeId, usize> = reach.iter().map(|&n| (n, 0)).collect();
        for &n in &reach {
            for &s in self.succ(n) {
                *indeg.get_mut(&s).expect("successor unreachable?") += 1;
            }
        }
        let mut queue: VecDeque<NodeId> = reach
            .iter()
            .copied()
            .filter(|n| indeg[n] == 0)
            .collect();
        let mut out = Vec::with_capacity(reach.len());
        while let Some(n) = queue.pop_front() {
            out.push(n);
            for &s in self.succ(n) {
                let d = indeg.get_mut(&s).unwrap();
                *d -= 1;
                if *d == 0 {
                    queue.push_back(s);
                }
            }
        }
        assert_eq!(out.len(), reach.len(), "cycle detected in CFG");
        out
    }

    /// Topological order of pipelines: `p` precedes `q` whenever some path
    /// runs from `p`'s exit to `q`'s entry (Alg. 2 line 2).
    pub fn pipeline_topo_order(&self) -> Vec<PipelineId> {
        let node_topo = self.topo_order();
        let pos: HashMap<NodeId, usize> = node_topo.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut ids: Vec<PipelineId> = (0..self.pipelines.len() as u32)
            .map(PipelineId)
            .filter(|p| pos.contains_key(&self.pipelines[p.0 as usize].entry))
            .collect();
        ids.sort_by_key(|p| pos[&self.pipelines[p.0 as usize].entry]);
        ids
    }

    /// Which pipeline a node belongs to, if any. A node belongs to pipeline
    /// `p` when it is reachable from `p.entry` without passing `p.exit`
    /// (markers themselves belong to the pipeline).
    pub fn pipeline_of(&self, node: NodeId) -> Option<PipelineId> {
        for (i, p) in self.pipelines.iter().enumerate() {
            if node == p.entry || node == p.exit {
                return Some(PipelineId(i as u32));
            }
            let mut stack = vec![p.entry];
            let mut seen = vec![false; self.nodes.len()];
            while let Some(n) = stack.pop() {
                if std::mem::replace(&mut seen[n.0 as usize], true) || n == p.exit {
                    continue;
                }
                if n == node {
                    return Some(PipelineId(i as u32));
                }
                stack.extend(self.succ(n));
            }
        }
        None
    }

    /// Replaces the body of a pipeline region (everything strictly between
    /// the entry and exit markers) with the given straight-line paths. Each
    /// path becomes a chain `entry → s0 → s1 → … → exit`. This is how
    /// Algorithm 2 installs a pipeline's summary (lines 11–25).
    ///
    /// An empty `paths` leaves the pipeline with no way through — callers
    /// only do this when the public pre-condition proved the pipeline
    /// unreachable.
    ///
    /// Paths sharing a statement prefix share the corresponding node chain
    /// (a trie): summarized paths are mutually exclusive, so sharing
    /// preserves semantics while keeping the DFS's progressive pruning —
    /// without it, every path probe would re-evaluate common guards.
    pub fn replace_pipeline_body(&mut self, id: PipelineId, paths: Vec<Vec<Stmt>>) {
        let with_sites = paths.into_iter().map(|p| (p, Vec::new())).collect();
        self.replace_pipeline_body_with_sites(id, with_sites);
    }

    /// [`Cfg::replace_pipeline_body`] with rule-coverage attribution: each
    /// path carries the [`RuleSite`]s its pre-summary original traversed,
    /// and those sites are attached to the path's *last* trie node — the
    /// one node every template taking this summarized path is guaranteed to
    /// visit and that no other path ends at. (A path that is a strict
    /// statement prefix of a sibling shares its last node with the longer
    /// path's interior; summarized paths are mutually exclusive by
    /// construction, so this does not occur for distinct encodings.)
    pub fn replace_pipeline_body_with_sites(
        &mut self,
        id: PipelineId,
        paths: Vec<(Vec<Stmt>, Vec<RuleSite>)>,
    ) {
        let (entry, exit) = {
            let p = &self.pipelines[id.0 as usize];
            (p.entry, p.exit)
        };
        self.nodes[entry.0 as usize].succ.clear();
        let items: Vec<(&[Stmt], &[RuleSite])> = paths
            .iter()
            .map(|(p, s)| (p.as_slice(), s.as_slice()))
            .collect();
        self.attach_shared(entry, exit, items);
    }

    fn attach_shared(&mut self, parent: NodeId, exit: NodeId, paths: Vec<(&[Stmt], &[RuleSite])>) {
        // Group by first statement, preserving first-seen order.
        let mut groups: Vec<(&Stmt, Vec<(&[Stmt], &[RuleSite])>)> = Vec::new();
        for (p, sites) in paths {
            match p.split_first() {
                None => {
                    self.nodes[parent.0 as usize].succ.push(exit);
                    if !sites.is_empty() {
                        self.rule_sites
                            .entry(parent)
                            .or_default()
                            .extend(sites.iter().cloned());
                    }
                }
                Some((head, tail)) => {
                    match groups.iter_mut().find(|(h, _)| *h == head) {
                        Some((_, tails)) => tails.push((tail, sites)),
                        None => groups.push((head, vec![(tail, sites)])),
                    }
                }
            }
        }
        for (head, tails) in groups {
            let n = self.push_node(head.clone());
            self.nodes[parent.0 as usize].succ.push(n);
            self.attach_shared(n, exit, tails);
        }
    }

    fn push_node(&mut self, stmt: Stmt) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            stmt,
            succ: Vec::new(),
        });
        id
    }

    /// Structural validation: the well-formedness invariants every graph
    /// the frontend or a manual encoder produces must satisfy. Returns the
    /// list of violations (empty = valid).
    ///
    /// Checks: acyclicity (§3.1 — recursion must be unrolled), pipeline
    /// markers are no-ops and reachable entry-before-exit, no edge from
    /// outside a pipeline into its interior (single-entry), and every
    /// assignment's expression width matches its destination field.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();

        // Acyclicity via the topo sort's own invariant, without panicking.
        let reach = self.reachable();
        {
            let mut indeg: HashMap<NodeId, usize> = reach.iter().map(|&n| (n, 0)).collect();
            for &n in &reach {
                for &s in self.succ(n) {
                    if let Some(d) = indeg.get_mut(&s) {
                        *d += 1;
                    }
                }
            }
            let mut queue: VecDeque<NodeId> =
                reach.iter().copied().filter(|n| indeg[n] == 0).collect();
            let mut seen = 0usize;
            while let Some(n) = queue.pop_front() {
                seen += 1;
                for &s in self.succ(n) {
                    let d = indeg.get_mut(&s).unwrap();
                    *d -= 1;
                    if *d == 0 {
                        queue.push_back(s);
                    }
                }
            }
            if seen != reach.len() {
                problems.push("cycle in reachable CFG (unroll recirculation per §4)".into());
            }
        }

        // Pipeline markers.
        let reach_set: std::collections::HashSet<NodeId> = reach.iter().copied().collect();
        for p in &self.pipelines {
            if reach_set.contains(&p.entry) {
                if !self.stmt(p.entry).is_nop() {
                    problems.push(format!("pipeline {} entry marker is not a no-op", p.name));
                }
                if !self.stmt(p.exit).is_nop() {
                    problems.push(format!("pipeline {} exit marker is not a no-op", p.name));
                }
                if !reach_set.contains(&p.exit) {
                    problems.push(format!(
                        "pipeline {} exit unreachable while entry is reachable",
                        p.name
                    ));
                }
            }
        }

        // Assignment width agreement.
        for &n in &reach {
            if let Stmt::Assign(f, e) = self.stmt(n) {
                let fw = self.fields.width(*f);
                let ew = e.width(&self.fields);
                if fw != ew {
                    problems.push(format!(
                        "node {} assigns {ew}-bit value to {fw}-bit field {}",
                        n.0,
                        self.fields.name(*f)
                    ));
                }
            }
        }
        problems
    }

    /// Renders the graph in DOT format for debugging.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph cfg {\n");
        for &n in &self.reachable() {
            let label = self
                .stmt(n)
                .display(&self.fields)
                .replace('"', "'");
            out.push_str(&format!("  n{} [label=\"{}\"];\n", n.0, label));
            for &s in self.succ(n) {
                out.push_str(&format!("  n{} -> n{};\n", n.0, s.0));
            }
        }
        out.push_str("}\n");
        out
    }
}

impl ToJson for Cfg {
    fn to_json(&self) -> Json {
        // raw_guards is a HashMap; emit entries sorted by node id so the
        // encoded text is byte-stable across runs.
        let mut guards: Vec<(&NodeId, &BExp)> = self.raw_guards.iter().collect();
        guards.sort_by_key(|(n, _)| **n);
        Json::Obj(vec![
            ("nodes".into(), self.nodes.to_json()),
            ("entry".into(), self.entry.to_json()),
            ("fields".into(), self.fields.to_json()),
            ("pipelines".into(), self.pipelines.to_json()),
            (
                "raw_guards".into(),
                Json::Arr(
                    guards
                        .into_iter()
                        .map(|(n, g)| Json::Arr(vec![n.to_json(), g.to_json()]))
                        .collect(),
                ),
            ),
            (
                "rule_sites".into(),
                Json::Arr({
                    let mut sites: Vec<(&NodeId, &Vec<RuleSite>)> =
                        self.rule_sites.iter().collect();
                    sites.sort_by_key(|(n, _)| **n);
                    sites
                        .into_iter()
                        .map(|(n, s)| Json::Arr(vec![n.to_json(), s.to_json()]))
                        .collect()
                }),
            ),
        ])
    }
}

impl FromJson for Cfg {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let nodes = Vec::<Node>::from_json(v.field("nodes")?)
            .map_err(|e| e.context("Cfg.nodes"))?;
        let entry = NodeId::from_json(v.field("entry")?).map_err(|e| e.context("Cfg.entry"))?;
        let fields = FieldTable::from_json(v.field("fields")?)
            .map_err(|e| e.context("Cfg.fields"))?;
        let pipelines = Vec::<PipelineInfo>::from_json(v.field("pipelines")?)
            .map_err(|e| e.context("Cfg.pipelines"))?;
        let raw_guards = Vec::<(NodeId, BExp)>::from_json(v.field("raw_guards")?)
            .map_err(|e| e.context("Cfg.raw_guards"))?
            .into_iter()
            .collect::<HashMap<_, _>>();
        // Absent in graphs encoded before rule-coverage attribution existed.
        let rule_sites = match v.get("rule_sites") {
            Some(rs) => Vec::<(NodeId, Vec<RuleSite>)>::from_json(rs)
                .map_err(|e| e.context("Cfg.rule_sites"))?
                .into_iter()
                .collect::<HashMap<_, _>>(),
            None => HashMap::new(),
        };
        let bound = nodes.len() as u32;
        let check = |id: NodeId, what: &str| -> Result<(), JsonError> {
            if id.0 >= bound {
                return Err(JsonError::new(format!(
                    "Cfg {what} references node {} out of {bound}",
                    id.0
                )));
            }
            Ok(())
        };
        check(entry, "entry")?;
        for n in &nodes {
            for &s in &n.succ {
                check(s, "edge")?;
            }
        }
        for p in &pipelines {
            check(p.entry, "pipeline entry")?;
            check(p.exit, "pipeline exit")?;
        }
        for id in raw_guards.keys() {
            check(*id, "raw guard")?;
        }
        for id in rule_sites.keys() {
            check(*id, "rule site")?;
        }
        Ok(Cfg {
            nodes,
            entry,
            fields,
            pipelines,
            raw_guards,
            rule_sites,
        })
    }
}

/// Builder for [`Cfg`]s, used by the P4lite compiler and by tests.
///
/// The builder maintains a *frontier*: the set of dangling nodes whose
/// successor edges will point at whatever is appended next. This matches
/// how a compiler lowers structured control flow — `branch` forks the
/// frontier, `join` merges it.
pub struct CfgBuilder {
    nodes: Vec<Node>,
    entry: Option<NodeId>,
    /// Nodes whose successor lists are still open.
    frontier: Vec<NodeId>,
    fields: FieldTable,
    pipelines: Vec<PipelineInfo>,
    /// Entry marker of the pipeline currently being built, if any.
    open_pipeline: Option<(String, NodeId)>,
    raw_guards: HashMap<NodeId, BExp>,
    rule_sites: HashMap<NodeId, Vec<RuleSite>>,
}

impl Default for CfgBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CfgBuilder {
    /// Creates a builder with an empty graph.
    pub fn new() -> Self {
        CfgBuilder {
            nodes: Vec::new(),
            entry: None,
            frontier: Vec::new(),
            fields: FieldTable::new(),
            pipelines: Vec::new(),
            open_pipeline: None,
            raw_guards: HashMap::new(),
            rule_sites: HashMap::new(),
        }
    }

    /// Access to the field table for interning fields while building.
    pub fn fields_mut(&mut self) -> &mut FieldTable {
        &mut self.fields
    }

    /// Read-only access to the field table.
    pub fn fields(&self) -> &FieldTable {
        &self.fields
    }

    fn push(&mut self, stmt: Stmt) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            stmt,
            succ: Vec::new(),
        });
        id
    }

    fn link_frontier_to(&mut self, n: NodeId) {
        if self.entry.is_none() {
            self.entry = Some(n);
        }
        for f in std::mem::take(&mut self.frontier) {
            self.nodes[f.0 as usize].succ.push(n);
        }
    }

    /// Appends a statement node after the current frontier.
    pub fn stmt(&mut self, stmt: Stmt) -> NodeId {
        let n = self.push(stmt);
        self.link_frontier_to(n);
        self.frontier.push(n);
        n
    }

    /// Appends a predicate node recording its raw (priority-free) guard.
    /// Use for table-rule and select-arm branches: `stmt` carries the
    /// flattened first-match-wins condition for analysis, `raw` the plain
    /// match the hardware evaluates in priority order.
    pub fn stmt_with_raw(&mut self, stmt: Stmt, raw: BExp) -> NodeId {
        let n = self.stmt(stmt);
        self.raw_guards.insert(n, raw);
        n
    }

    /// Attributes a node to a table arm for rule-coverage accounting. The
    /// frontend calls this on every table-rule arm node (with the rule's
    /// priority-order index) and on the miss-arm node.
    pub fn mark_rule_site(&mut self, node: NodeId, table: &str, arm: RuleArm) {
        self.rule_sites.entry(node).or_default().push(RuleSite {
            table: table.to_string(),
            arm,
        });
    }

    /// Appends a no-op node (useful as an explicit join point).
    pub fn nop(&mut self) -> NodeId {
        self.stmt(Stmt::Assume(BExp::True))
    }

    /// The current frontier (dangling nodes).
    pub fn frontier(&self) -> Vec<NodeId> {
        self.frontier.clone()
    }

    /// Replaces the frontier, returning the previous one. Used to lower
    /// branching control flow: save the fork point, build each arm from it,
    /// then `merge_frontiers` of all arms.
    pub fn set_frontier(&mut self, frontier: Vec<NodeId>) -> Vec<NodeId> {
        std::mem::replace(&mut self.frontier, frontier)
    }

    /// Unions the given saved frontiers into the current one.
    pub fn merge_frontiers(&mut self, mut saved: Vec<Vec<NodeId>>) {
        for f in saved.drain(..) {
            self.frontier.extend(f);
        }
        self.frontier.sort();
        self.frontier.dedup();
    }

    /// Opens a pipeline region: emits the entry marker node.
    ///
    /// # Panics
    /// Panics if a pipeline is already open — pipelines never nest (they are
    /// hardware pipes).
    pub fn begin_pipeline(&mut self, name: &str) -> NodeId {
        assert!(
            self.open_pipeline.is_none(),
            "pipeline {name} opened while another pipeline is open"
        );
        let marker = self.nop();
        self.open_pipeline = Some((name.to_string(), marker));
        marker
    }

    /// Closes the open pipeline region: emits the exit marker node.
    pub fn end_pipeline(&mut self) -> PipelineId {
        let (name, entry) = self.open_pipeline.take().expect("no open pipeline");
        let exit = self.nop();
        let id = PipelineId(self.pipelines.len() as u32);
        self.pipelines.push(PipelineInfo { name, entry, exit });
        id
    }

    /// Finishes the graph.
    ///
    /// # Panics
    /// Panics if nothing was built or a pipeline is still open.
    pub fn finish(self) -> Cfg {
        assert!(self.open_pipeline.is_none(), "unclosed pipeline");
        Cfg {
            entry: self.entry.expect("empty CFG"),
            nodes: self.nodes,
            fields: self.fields,
            pipelines: self.pipelines,
            raw_guards: self.raw_guards,
            rule_sites: self.rule_sites,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::{AExp, CmpOp};
    use meissa_num::Bv;

    fn assign(b: &mut CfgBuilder, name: &str, w: u16, v: u128) -> NodeId {
        let f = b.fields_mut().intern(name, w);
        b.stmt(Stmt::Assign(f, AExp::Const(Bv::new(w, v))))
    }

    fn pred(b: &mut CfgBuilder, name: &str, w: u16, v: u128) -> NodeId {
        let f = b.fields_mut().intern(name, w);
        b.stmt(Stmt::Assume(BExp::Cmp(
            CmpOp::Eq,
            AExp::Field(f),
            AExp::Const(Bv::new(w, v)),
        )))
    }

    #[test]
    fn straight_line_graph() {
        let mut b = CfgBuilder::new();
        let n1 = assign(&mut b, "x", 8, 1);
        let n2 = assign(&mut b, "y", 8, 2);
        let g = b.finish();
        assert_eq!(g.entry(), n1);
        assert_eq!(g.succ(n1), &[n2]);
        assert!(g.succ(n2).is_empty());
        assert_eq!(g.num_reachable_nodes(), 2);
    }

    #[test]
    fn branching_and_joining() {
        let mut b = CfgBuilder::new();
        let fork = b.nop();
        let _ = fork;
        let base = b.frontier();

        b.set_frontier(base.clone());
        let a1 = pred(&mut b, "x", 8, 1);
        let arm1 = b.frontier();

        b.set_frontier(base);
        let a2 = pred(&mut b, "x", 8, 2);
        let arm2 = b.frontier();

        b.set_frontier(Vec::new());
        b.merge_frontiers(vec![arm1, arm2]);
        let join = b.nop();

        let g = b.finish();
        let entry_succ = g.succ(g.entry());
        assert_eq!(entry_succ.len(), 2);
        assert!(entry_succ.contains(&a1) && entry_succ.contains(&a2));
        assert_eq!(g.succ(a1), &[join]);
        assert_eq!(g.succ(a2), &[join]);
    }

    #[test]
    fn topo_order_respects_edges() {
        let mut b = CfgBuilder::new();
        let n1 = b.nop();
        let base = b.frontier();
        b.set_frontier(base.clone());
        let a = pred(&mut b, "x", 8, 1);
        let f1 = b.frontier();
        b.set_frontier(base);
        let c = pred(&mut b, "x", 8, 2);
        let f2 = b.frontier();
        b.set_frontier(Vec::new());
        b.merge_frontiers(vec![f1, f2]);
        let j = b.nop();
        let g = b.finish();
        let order = g.topo_order();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(n1) < pos(a));
        assert!(pos(n1) < pos(c));
        assert!(pos(a) < pos(j));
        assert!(pos(c) < pos(j));
    }

    #[test]
    fn pipeline_markers_and_membership() {
        let mut b = CfgBuilder::new();
        b.begin_pipeline("ingress0");
        let inner = assign(&mut b, "x", 8, 1);
        let p0 = b.end_pipeline();
        b.begin_pipeline("egress0");
        let inner2 = assign(&mut b, "y", 8, 2);
        let p1 = b.end_pipeline();
        let g = b.finish();

        assert_eq!(g.pipelines().len(), 2);
        assert_eq!(g.pipeline(p0).name, "ingress0");
        assert_eq!(g.pipeline_of(inner), Some(p0));
        assert_eq!(g.pipeline_of(inner2), Some(p1));
        assert_eq!(g.find_pipeline("egress0"), Some(p1));
        assert_eq!(g.find_pipeline("nope"), None);
        // Markers are no-ops.
        assert!(g.stmt(g.pipeline(p0).entry).is_nop());
        assert!(g.stmt(g.pipeline(p0).exit).is_nop());
    }

    #[test]
    fn pipeline_topo_order_follows_wiring() {
        let mut b = CfgBuilder::new();
        b.begin_pipeline("a");
        assign(&mut b, "x", 8, 1);
        let pa = b.end_pipeline();
        b.begin_pipeline("b");
        assign(&mut b, "y", 8, 1);
        let pb = b.end_pipeline();
        let g = b.finish();
        assert_eq!(g.pipeline_topo_order(), vec![pa, pb]);
    }

    #[test]
    fn replace_pipeline_body_rewires_region() {
        let mut b = CfgBuilder::new();
        b.begin_pipeline("p");
        assign(&mut b, "x", 8, 1);
        assign(&mut b, "x", 8, 2);
        let p = b.end_pipeline();
        let tail = assign(&mut b, "done", 1, 1);
        let mut g = b.finish();

        let f = g.fields.get("x").unwrap();
        g.replace_pipeline_body(
            p,
            vec![
                vec![Stmt::Assign(f, AExp::Const(Bv::new(8, 10)))],
                vec![Stmt::Assign(f, AExp::Const(Bv::new(8, 20)))],
            ],
        );
        let entry = g.pipeline(p).entry;
        let exit = g.pipeline(p).exit;
        assert_eq!(g.succ(entry).len(), 2, "two summarized paths");
        for &s in g.succ(entry) {
            assert_eq!(g.succ(s), &[exit]);
        }
        // Downstream wiring is intact.
        assert_eq!(g.succ(exit), &[tail]);
    }

    #[test]
    fn dot_rendering_mentions_fields() {
        let mut b = CfgBuilder::new();
        assign(&mut b, "meta.port", 9, 3);
        let g = b.finish();
        let dot = g.to_dot();
        assert!(dot.contains("meta.port"), "{dot}");
        assert!(dot.starts_with("digraph"));
    }


    #[test]
    fn validate_accepts_wellformed_graphs() {
        let mut b = CfgBuilder::new();
        b.begin_pipeline("p");
        assign(&mut b, "x", 8, 1);
        b.end_pipeline();
        let g = b.finish();
        assert!(g.validate().is_empty(), "{:?}", g.validate());
    }

    #[test]
    fn validate_flags_width_mismatch() {
        let mut b = CfgBuilder::new();
        let f = b.fields_mut().intern("x", 8);
        // Construct a deliberately ill-typed assignment.
        b.stmt(Stmt::Assign(f, AExp::Const(Bv::new(16, 1))));
        let g = b.finish();
        let problems = g.validate();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("16-bit value to 8-bit"), "{problems:?}");
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let mut b = CfgBuilder::new();
        b.begin_pipeline("ingress0");
        let f = b.fields_mut().intern("x", 8);
        let raw = BExp::Cmp(CmpOp::Eq, AExp::Field(f), AExp::Const(Bv::new(8, 7)));
        b.stmt_with_raw(Stmt::Assume(raw.clone()), raw.clone());
        assign(&mut b, "y", 16, 2);
        b.end_pipeline();
        let g = b.finish();

        let text = g.to_json_text();
        let back = Cfg::from_json_text(&text).unwrap();
        // Cfg has no PartialEq; re-encoding must reproduce the same bytes,
        // and the structural accessors must agree.
        assert_eq!(back.to_json_text(), text);
        assert_eq!(back.entry(), g.entry());
        assert_eq!(back.num_nodes(), g.num_nodes());
        assert_eq!(back.pipelines().len(), 1);
        assert_eq!(back.pipelines()[0].name, "ingress0");
        assert_eq!(back.fields.get("x"), g.fields.get("x"));
        let guarded = g
            .reachable()
            .into_iter()
            .find(|&n| g.raw_guard(n).is_some())
            .unwrap();
        assert_eq!(back.raw_guard(guarded), Some(&raw));
    }

    #[test]
    fn rule_sites_survive_marking_and_json_roundtrip() {
        let mut b = CfgBuilder::new();
        b.begin_pipeline("ingress0");
        let arm0 = pred(&mut b, "x", 8, 1);
        b.mark_rule_site(arm0, "t0", RuleArm::Rule(0));
        let miss = pred(&mut b, "x", 8, 2);
        b.mark_rule_site(miss, "t0", RuleArm::Miss);
        b.end_pipeline();
        let g = b.finish();

        assert_eq!(
            g.rule_sites(arm0),
            &[RuleSite {
                table: "t0".into(),
                arm: RuleArm::Rule(0)
            }]
        );
        assert_eq!(g.rule_sites(miss)[0].arm, RuleArm::Miss);
        assert!(g.rule_sites(g.entry()).is_empty());

        let text = g.to_json_text();
        let back = Cfg::from_json_text(&text).unwrap();
        assert_eq!(back.to_json_text(), text);
        assert_eq!(back.rule_sites(arm0), g.rule_sites(arm0));
        assert_eq!(back.rule_sites(miss), g.rule_sites(miss));
    }

    #[test]
    fn json_decode_tolerates_absent_rule_sites() {
        let mut b = CfgBuilder::new();
        assign(&mut b, "x", 8, 1);
        let g = b.finish();
        let text = g.to_json_text().replace(",\"rule_sites\":[]", "");
        assert!(!text.contains("rule_sites"), "{text}");
        let back = Cfg::from_json_text(&text).unwrap();
        assert!(back.rule_site_map().is_empty());
    }

    #[test]
    fn replace_with_sites_attributes_last_node_of_each_path() {
        let mut b = CfgBuilder::new();
        b.begin_pipeline("p");
        assign(&mut b, "x", 8, 1);
        let p = b.end_pipeline();
        let mut g = b.finish();

        let f = g.fields.get("x").unwrap();
        let site = |i: u32| RuleSite {
            table: "t".into(),
            arm: RuleArm::Rule(i),
        };
        // Two paths sharing a one-statement prefix: the shared trie node
        // must stay unattributed; each path's final node carries its sites.
        let shared = Stmt::Assign(f, AExp::Const(Bv::new(8, 1)));
        g.replace_pipeline_body_with_sites(
            p,
            vec![
                (
                    vec![shared.clone(), Stmt::Assign(f, AExp::Const(Bv::new(8, 2)))],
                    vec![site(0)],
                ),
                (
                    vec![shared.clone(), Stmt::Assign(f, AExp::Const(Bv::new(8, 3)))],
                    vec![site(1)],
                ),
            ],
        );
        let entry = g.pipeline(p).entry;
        let exit = g.pipeline(p).exit;
        assert_eq!(g.succ(entry).len(), 1, "shared prefix collapses");
        let head = g.succ(entry)[0];
        assert!(g.rule_sites(head).is_empty(), "shared node unattributed");
        assert_eq!(g.succ(head).len(), 2);
        let mut seen = Vec::new();
        for &leaf in g.succ(head) {
            assert_eq!(g.succ(leaf), &[exit]);
            assert_eq!(g.rule_sites(leaf).len(), 1);
            seen.push(g.rule_sites(leaf)[0].arm);
        }
        seen.sort();
        assert_eq!(seen, vec![RuleArm::Rule(0), RuleArm::Rule(1)]);
    }

    #[test]
    fn json_decode_rejects_dangling_edges() {
        let mut b = CfgBuilder::new();
        assign(&mut b, "x", 8, 1);
        let g = b.finish();
        let text = g.to_json_text().replace("\"entry\":0", "\"entry\":99");
        assert!(Cfg::from_json_text(&text).is_err());
    }

    #[test]
    #[should_panic(expected = "empty CFG")]
    fn empty_graph_panics() {
        CfgBuilder::new().finish();
    }

    #[test]
    #[should_panic(expected = "another pipeline is open")]
    fn nested_pipelines_panic() {
        let mut b = CfgBuilder::new();
        b.begin_pipeline("a");
        b.begin_pipeline("b");
    }
}
