//! A self-contained JSON encoder/decoder.
//!
//! Replaces the `serde`/`serde_json` derive stack: types implement
//! [`ToJson`]/[`FromJson`] by hand against the [`Json`] tree. The codec is
//! deliberately small — it supports exactly what this workspace serializes
//! (CFGs, ASTs, rule sets, bench records) — and deterministic: map-like
//! data is emitted in a caller-controlled order so encoded output is
//! byte-stable across runs.
//!
//! Integers are carried as `u128`/`i128` so 128-bit bitvector payloads
//! round-trip losslessly; they are written as bare JSON integer literals,
//! which standard JSON permits (precision limits are an interop concern,
//! not a grammar one, and we control both ends).

use std::collections::HashMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Non-negative integers (the common case for widths, ids, payloads).
    UInt(u128),
    /// Negative integers only; non-negative values normalize to `UInt`.
    Int(i128),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Ordered key/value pairs — order is preserved, not sorted, so the
    /// encoder controls determinism.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required-field lookup with a typed error.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(JsonError::new(format!("expected array, got {}", other.kind()))),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::new(format!("expected string, got {}", other.kind()))),
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u128(&self) -> Result<u128, JsonError> {
        match self {
            Json::UInt(v) => Ok(*v),
            other => Err(JsonError::new(format!(
                "expected unsigned integer, got {}",
                other.kind()
            ))),
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!("expected bool, got {}", other.kind()))),
        }
    }

    /// The value as a float (integers coerce).
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Float(v) => Ok(*v),
            Json::UInt(v) => Ok(*v as f64),
            Json::Int(v) => Ok(*v as f64),
            other => Err(JsonError::new(format!("expected number, got {}", other.kind()))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::UInt(_) | Json::Int(_) => "integer",
            Json::Float(_) => "float",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Serializes to compact JSON text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // Keep a decimal point so the value re-parses as Float.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing input at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Decode/parse failure with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> JsonError {
        JsonError { msg: msg.into() }
    }

    /// Prefixes the message with a decoding context (type or field name).
    pub fn context(self, ctx: &str) -> JsonError {
        JsonError {
            msg: format!("{ctx}: {}", self.msg),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(JsonError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(JsonError::new(format!(
                "unexpected byte `{}` at {}",
                b as char, self.pos
            ))),
            None => Err(JsonError::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(JsonError::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| JsonError::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::new("bad \\u escape"))?;
                            // Surrogates are not produced by our encoder;
                            // map unpaired ones to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::new("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(JsonError::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ascii");
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| JsonError::new(format!("bad number `{text}`")))?;
            Ok(Json::Float(v))
        } else if let Some(rest) = text.strip_prefix('-') {
            let mag: u128 = rest
                .parse()
                .map_err(|_| JsonError::new(format!("bad number `{text}`")))?;
            let v = if mag == 1u128 << 127 {
                i128::MIN
            } else {
                let m = i128::try_from(mag).map_err(|_| {
                    JsonError::new(format!("integer out of range `{text}`"))
                })?;
                -m
            };
            Ok(Json::Int(v))
        } else {
            let v: u128 = text
                .parse()
                .map_err(|_| JsonError::new(format!("bad number `{text}`")))?;
            Ok(Json::UInt(v))
        }
    }
}

/// Encoding into the [`Json`] tree.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;

    /// Convenience: straight to compact text.
    fn to_json_text(&self) -> String {
        self.to_json().to_text()
    }
}

/// Decoding from the [`Json`] tree.
pub trait FromJson: Sized {
    /// Reconstructs a value, rejecting shape mismatches.
    fn from_json(v: &Json) -> Result<Self, JsonError>;

    /// Convenience: parse text then decode.
    fn from_json_text(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }
}

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u128)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let raw = v.as_u128()?;
                <$t>::try_from(raw).map_err(|_| {
                    JsonError::new(format!(
                        "{raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_json_uint!(u8, u16, u32, u64, usize);

impl ToJson for u128 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}
impl FromJson for u128 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_u128()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}
impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}
impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}
impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.as_str()?.to_owned())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}
impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}
impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_arr()? {
            [a, b] => Ok((A::from_json(a)?, B::from_json(b)?)),
            other => Err(JsonError::new(format!(
                "expected 2-element array, got {} elements",
                other.len()
            ))),
        }
    }
}

/// Maps encode as objects with **sorted** keys for byte-stable output.
impl<V: ToJson> ToJson for HashMap<String, V> {
    fn to_json(&self) -> Json {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Json::Obj(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_json()))
                .collect(),
        )
    }
}
impl<V: FromJson> FromJson for HashMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            other => Err(JsonError::new(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

/// Helper for enum-style encodings: `{"tag": ...payload...}`.
pub fn tagged(tag: &str, payload: Json) -> Json {
    Json::Obj(vec![(tag.to_owned(), payload)])
}

/// Helper for decoding enum-style encodings: the single `(tag, payload)`
/// pair of a one-key object, or a bare string tag for unit variants.
pub fn untag(v: &Json) -> Result<(&str, &Json), JsonError> {
    const UNIT: &Json = &Json::Null;
    match v {
        Json::Str(tag) => Ok((tag, UNIT)),
        Json::Obj(pairs) if pairs.len() == 1 => {
            Ok((pairs[0].0.as_str(), &pairs[0].1))
        }
        other => Err(JsonError::new(format!(
            "expected enum tag, got {}",
            other.kind()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let text = v.to_text();
        let back = Json::parse(&text).expect("parse back");
        assert_eq!(&back, v, "round-trip through `{text}`");
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(&Json::Null);
        roundtrip(&Json::Bool(true));
        roundtrip(&Json::Bool(false));
        roundtrip(&Json::UInt(0));
        roundtrip(&Json::UInt(u128::MAX));
        roundtrip(&Json::Int(-1));
        roundtrip(&Json::Int(i128::MIN));
        roundtrip(&Json::Float(1.5));
        roundtrip(&Json::Float(-0.25));
        roundtrip(&Json::Str("hello".into()));
        roundtrip(&Json::Str("quote\" slash\\ nl\n tab\t".into()));
        roundtrip(&Json::Str("unicode: λ∀ 日本".into()));
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(&Json::Arr(vec![]));
        roundtrip(&Json::Obj(vec![]));
        roundtrip(&Json::Arr(vec![
            Json::UInt(1),
            Json::Str("x".into()),
            Json::Arr(vec![Json::Null]),
        ]));
        roundtrip(&Json::Obj(vec![
            ("a".into(), Json::UInt(1)),
            ("b".into(), Json::Obj(vec![("c".into(), Json::Bool(false))])),
        ]));
    }

    #[test]
    fn whole_float_reparses_as_float() {
        let text = Json::Float(2.0).to_text();
        assert_eq!(text, "2.0");
        assert_eq!(Json::parse(&text).unwrap(), Json::Float(2.0));
    }

    #[test]
    fn negative_zero_stays_integer_zero() {
        // "-0" parses as Int(0)? We normalize: -0 magnitude 0 negates to 0.
        assert_eq!(Json::parse("-0").unwrap(), Json::Int(0));
    }

    #[test]
    fn parses_whitespace_and_rejects_trailing() {
        assert_eq!(
            Json::parse(" { \"k\" : [ 1 , 2 ] } ").unwrap(),
            Json::Obj(vec![(
                "k".into(),
                Json::Arr(vec![Json::UInt(1), Json::UInt(2)])
            )])
        );
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn typed_roundtrips() {
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_json_text(&v.to_json_text()).unwrap(), v);

        let opt: Option<String> = None;
        assert_eq!(
            Option::<String>::from_json_text(&opt.to_json_text()).unwrap(),
            opt
        );

        let pair: (u16, String) = (9, "p".into());
        assert_eq!(
            <(u16, String)>::from_json_text(&pair.to_json_text()).unwrap(),
            pair
        );

        let mut map = HashMap::new();
        map.insert("b".to_owned(), 2u64);
        map.insert("a".to_owned(), 1u64);
        let text = map.to_json_text();
        assert_eq!(text, r#"{"a":1,"b":2}"#, "sorted keys");
        assert_eq!(
            HashMap::<String, u64>::from_json_text(&text).unwrap(),
            map
        );
    }

    #[test]
    fn out_of_range_uint_rejected() {
        assert!(u8::from_json(&Json::UInt(300)).is_err());
        assert!(u8::from_json(&Json::UInt(255)).is_ok());
    }

    #[test]
    fn tagged_enum_helpers() {
        let v = tagged("Exact", Json::UInt(7));
        let (tag, payload) = untag(&v).unwrap();
        assert_eq!(tag, "Exact");
        assert_eq!(payload, &Json::UInt(7));

        let unit = Json::Str("Accept".into());
        let (tag, payload) = untag(&unit).unwrap();
        assert_eq!(tag, "Accept");
        assert_eq!(payload, &Json::Null);
    }
}
