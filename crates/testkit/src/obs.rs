//! Hermetic tracing & metrics core.
//!
//! Everything the engine, solver, and wire driver need to explain where
//! time and SMT checks go, with zero crates.io dependencies:
//!
//! * **Spans & events** — per-thread buffers (plain `RefCell` pushes, no
//!   locks on the hot path) holding closed spans and point events with
//!   monotonic nanosecond timestamps. A thread's buffer is parked into a
//!   global list when the thread exits, so scoped worker threads hand
//!   their records to whoever calls [`drain`]/[`flush_trace`] after the
//!   join.
//! * **Metrics** — typed [`Counter`]s, [`Gauge`]s, and log2-bucket
//!   [`Histogram`]s in a global registry, rendered as Prometheus text
//!   exposition by [`metrics_text`]. The nearest-rank percentile index
//!   ([`percentile_index`]) is shared with `driver::report`'s latency
//!   p50/p99.
//! * **Config** — `MEISSA_TRACE=<path>` enables JSONL export (one JSON
//!   object per line, written with [`crate::json`]), `MEISSA_LOG=off|
//!   info|debug` enables stderr lines. Tests and benches use the
//!   programmatic [`trace_to`]/[`trace_off`]/[`set_log`] instead.
//! * **Disabled path** — every instrumentation site is gated on a single
//!   relaxed atomic load ([`active`]/[`trace_on`]); with all features
//!   off no allocation, locking, or clock read happens.
//!
//! Instrumentation must never perturb what it observes: recording is
//! strictly write-only side channel state, and the engine's own
//! `RunStats`/`ExecStats` counters are maintained independently of this
//! module (the suite asserts byte-identical output with tracing on and
//! off).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};
use std::time::Instant;

use crate::json::Json;

// ---------------------------------------------------------------------------
// Global enable flags — one relaxed load decides the whole disabled path.
// ---------------------------------------------------------------------------

const F_TRACE: u8 = 1 << 0;
const F_LOG_INFO: u8 = 1 << 1;
const F_LOG_DEBUG: u8 = 1 << 2;

static FLAGS: AtomicU8 = AtomicU8::new(0);

/// True when any observability feature (trace or logging) is on. Hot
/// call sites check this once before touching counters or clocks.
#[inline(always)]
pub fn active() -> bool {
    FLAGS.load(Ordering::Relaxed) != 0
}

/// True when span/event recording (JSONL trace) is enabled.
#[inline(always)]
pub fn trace_on() -> bool {
    FLAGS.load(Ordering::Relaxed) & F_TRACE != 0
}

/// Stderr log verbosity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    Off,
    Info,
    Debug,
}

/// True when `level` messages should reach stderr.
#[inline(always)]
pub fn log_on(level: LogLevel) -> bool {
    let f = FLAGS.load(Ordering::Relaxed);
    match level {
        LogLevel::Off => false,
        LogLevel::Info => f & (F_LOG_INFO | F_LOG_DEBUG) != 0,
        LogLevel::Debug => f & F_LOG_DEBUG != 0,
    }
}

fn set_flag(bit: u8, on: bool) {
    if on {
        FLAGS.fetch_or(bit, Ordering::Relaxed);
    } else {
        FLAGS.fetch_and(!bit, Ordering::Relaxed);
    }
}

/// Sets the stderr log level (programmatic equivalent of `MEISSA_LOG`).
pub fn set_log(level: LogLevel) {
    set_flag(F_LOG_INFO | F_LOG_DEBUG, false);
    match level {
        LogLevel::Off => {}
        LogLevel::Info => set_flag(F_LOG_INFO, true),
        LogLevel::Debug => set_flag(F_LOG_DEBUG, true),
    }
}

/// Writes one stderr log line. Callers gate on [`log_on`] first so the
/// formatting cost is only paid when the level is enabled.
pub fn log(level: LogLevel, target: &str, msg: &str) {
    if log_on(level) {
        let tag = if level >= LogLevel::Debug { "debug" } else { "info" };
        eprintln!("[meissa {tag} {:>10}ns {target}] {msg}", now_ns());
    }
}

// ---------------------------------------------------------------------------
// Monotonic clock
// ---------------------------------------------------------------------------

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the first observability call in this
/// process. All span/event timestamps share this epoch.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Records & per-thread buffers
// ---------------------------------------------------------------------------

/// One finished trace record. Spans are recorded when they close; events
/// are instantaneous points attributed to the enclosing span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    Span {
        /// Process-unique span id (> 0).
        id: u64,
        /// Enclosing span id on the same thread, 0 for a root span.
        parent: u64,
        /// Process-unique observability thread id.
        tid: u64,
        name: &'static str,
        start_ns: u64,
        dur_ns: u64,
        fields: Vec<(&'static str, u64)>,
    },
    Event {
        tid: u64,
        /// Enclosing span id, 0 when emitted outside any span.
        span: u64,
        name: &'static str,
        at_ns: u64,
        fields: Vec<(&'static str, u64)>,
    },
    /// A structured payload that span/event fields cannot carry: `data` is
    /// pre-rendered JSON text (span/event field names must be `'static`,
    /// but e.g. a per-table coverage map is keyed by runtime strings).
    Note {
        tid: u64,
        name: &'static str,
        at_ns: u64,
        data: String,
    },
}

impl Record {
    fn sort_key(&self) -> (u64, u64) {
        match self {
            Record::Span { start_ns, id, .. } => (*start_ns, *id),
            Record::Event { at_ns, .. } => (*at_ns, u64::MAX),
            Record::Note { at_ns, .. } => (*at_ns, u64::MAX),
        }
    }
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// Records parked by exited threads, plus anything [`park_current_thread`]
/// handed over early.
static PARKED: Mutex<Vec<Record>> = Mutex::new(Vec::new());

struct ThreadState {
    tid: u64,
    /// Open-span stack (ids); top is the current parent.
    stack: Vec<u64>,
    buf: Vec<Record>,
}

impl Drop for ThreadState {
    fn drop(&mut self) {
        if !self.buf.is_empty() {
            if let Ok(mut parked) = PARKED.lock() {
                parked.append(&mut self.buf);
            }
        }
    }
}

thread_local! {
    static TLS: RefCell<ThreadState> = RefCell::new(ThreadState {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        stack: Vec::new(),
        buf: Vec::new(),
    });
}

fn with_tls<R>(f: impl FnOnce(&mut ThreadState) -> R) -> Option<R> {
    // `try_with` so a record emitted during TLS teardown is dropped
    // instead of panicking.
    TLS.try_with(|s| f(&mut s.borrow_mut())).ok()
}

/// Moves the calling thread's pending records into the global parked
/// list so another thread's [`drain`] can see them. Long-lived threads
/// (e.g. agent connection loops) call this at natural boundaries;
/// short-lived worker threads park automatically on exit.
pub fn park_current_thread() {
    with_tls(|s| {
        if !s.buf.is_empty() {
            if let Ok(mut parked) = PARKED.lock() {
                parked.append(&mut s.buf);
            }
        }
    });
}

/// Takes every record parked by exited threads plus the calling thread's
/// own buffer, sorted by start time. Live *other* threads keep their
/// buffers until they exit or park — callers drain after joining workers.
pub fn drain() -> Vec<Record> {
    let mut out = PARKED.lock().map(|mut p| std::mem::take(&mut *p)).unwrap_or_default();
    with_tls(|s| out.append(&mut s.buf));
    out.sort_by_key(Record::sort_key);
    out
}

// ---------------------------------------------------------------------------
// Spans & events
// ---------------------------------------------------------------------------

/// RAII guard for an open span; records the span into the thread buffer
/// on drop. Obtained from [`span`]. When tracing is disabled the guard is
/// inert and costs nothing beyond the flag load that produced it.
pub struct SpanGuard {
    live: bool,
    id: u64,
    name: &'static str,
    start_ns: u64,
    fields: Vec<(&'static str, u64)>,
}

impl SpanGuard {
    /// Attaches a numeric field, recorded when the span closes. No-op on
    /// an inert guard.
    pub fn field(&mut self, name: &'static str, value: u64) {
        if self.live {
            self.fields.push((name, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let end = now_ns();
        let fields = std::mem::take(&mut self.fields);
        with_tls(|s| {
            // Pop up to and including our own id; tolerates skipped pops
            // if an inner guard leaked across a panic.
            while let Some(top) = s.stack.pop() {
                if top == self.id {
                    break;
                }
            }
            let parent = s.stack.last().copied().unwrap_or(0);
            s.buf.push(Record::Span {
                id: self.id,
                parent,
                tid: s.tid,
                name: self.name,
                start_ns: self.start_ns,
                dur_ns: end.saturating_sub(self.start_ns),
                fields,
            });
        });
    }
}

/// Opens a span. Returns an inert guard when tracing is off.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !trace_on() {
        return SpanGuard { live: false, id: 0, name, start_ns: 0, fields: Vec::new() };
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let start_ns = now_ns();
    with_tls(|s| s.stack.push(id));
    SpanGuard { live: true, id, name, start_ns, fields: Vec::new() }
}

/// Records an instantaneous event attributed to the current span.
#[inline]
pub fn event(name: &'static str, fields: &[(&'static str, u64)]) {
    if !trace_on() {
        return;
    }
    let at_ns = now_ns();
    with_tls(|s| {
        let span = s.stack.last().copied().unwrap_or(0);
        let tid = s.tid;
        s.buf.push(Record::Event { tid, span, name, at_ns, fields: fields.to_vec() });
    });
}

/// Records a structured note: `data` must be rendered JSON text (it is
/// embedded verbatim in the trace line). Use for payloads with runtime
/// keys — per-table coverage maps — that `event` fields cannot express.
pub fn note(name: &'static str, data: String) {
    if !trace_on() {
        return;
    }
    let at_ns = now_ns();
    with_tls(|s| {
        let tid = s.tid;
        s.buf.push(Record::Note { tid, name, at_ns, data });
    });
}

/// Records a span retroactively from explicit timestamps. Used where a
/// span's lifetime doesn't nest on the stack — e.g. a wire test case
/// whose send and verdict are separated by other cases in the window.
/// The span is parented under the caller's current open span.
pub fn span_closed(name: &'static str, start_ns: u64, dur_ns: u64, fields: &[(&'static str, u64)]) {
    if !trace_on() {
        return;
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    with_tls(|s| {
        let parent = s.stack.last().copied().unwrap_or(0);
        let tid = s.tid;
        s.buf.push(Record::Span {
            id,
            parent,
            tid,
            name,
            start_ns,
            dur_ns,
            fields: fields.to_vec(),
        });
    });
}

// ---------------------------------------------------------------------------
// Metrics: counters, gauges, histograms
// ---------------------------------------------------------------------------

/// Monotonically increasing counter.
#[derive(Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge.
#[derive(Default)]
pub struct Gauge {
    v: AtomicU64,
}

impl Gauge {
    pub fn set(&self, n: u64) {
        self.v.store(n, Ordering::Relaxed);
    }
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

const HIST_BUCKETS: usize = 65;

/// Log2-bucket histogram: value `v` lands in bucket `bit_length(v)`
/// (bucket 0 holds zeros), so quantiles are exact to within one power of
/// two. Cheap enough for per-probe recording; exact percentiles stay in
/// `driver::report`, which keeps raw samples.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn record(&self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
    /// Nearest-rank quantile, reported as the lower bound of the bucket
    /// holding the ranked sample (0 for an empty histogram).
    pub fn quantile(&self, p: u32) -> u64 {
        let n = self.count() as usize;
        if n == 0 {
            return 0;
        }
        let rank = percentile_index(n, p);
        let mut seen = 0usize;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed) as usize;
            if seen > rank {
                return if idx == 0 { 0 } else { 1u64 << (idx - 1) };
            }
        }
        1u64 << (HIST_BUCKETS - 2)
    }
}

/// Index of the p-th percentile sample in a sorted slice of `len`
/// items — the same interpolation `driver::report` uses for latency
/// p50/p99, hoisted here so histogram quantiles and report percentiles
/// agree on rank selection. `len` must be > 0.
pub fn percentile_index(len: usize, p: u32) -> usize {
    ((p as usize) * (len - 1) + 50) / 100
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Hist(Arc<Histogram>),
}

static METRICS: Mutex<BTreeMap<&'static str, Metric>> = Mutex::new(BTreeMap::new());

/// Returns (registering on first use) the named counter. Call sites keep
/// the `Arc` in a `OnceLock` so the registry lock is paid once.
pub fn counter(name: &'static str) -> Arc<Counter> {
    let mut m = METRICS.lock().unwrap();
    match m.entry(name).or_insert_with(|| Metric::Counter(Arc::new(Counter::default()))) {
        Metric::Counter(c) => c.clone(),
        _ => panic!("metric {name:?} already registered with a different type"),
    }
}

/// Returns (registering on first use) the named gauge.
pub fn gauge(name: &'static str) -> Arc<Gauge> {
    let mut m = METRICS.lock().unwrap();
    match m.entry(name).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default()))) {
        Metric::Gauge(g) => g.clone(),
        _ => panic!("metric {name:?} already registered with a different type"),
    }
}

/// Returns (registering on first use) the named histogram.
pub fn histogram(name: &'static str) -> Arc<Histogram> {
    let mut m = METRICS.lock().unwrap();
    match m.entry(name).or_insert_with(|| Metric::Hist(Arc::new(Histogram::default()))) {
        Metric::Hist(h) => h.clone(),
        _ => panic!("metric {name:?} already registered with a different type"),
    }
}

/// Dotted metric name → Prometheus metric name (`smt.checks` →
/// `meissa_smt_checks`).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("meissa_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Renders every registered metric in Prometheus text exposition format
/// (`# TYPE` line plus samples; histograms as summaries with p50/p99
/// quantile labels, `_count`, and `_sum`).
pub fn metrics_text() -> String {
    let m = METRICS.lock().unwrap();
    let mut out = String::new();
    for (name, metric) in m.iter() {
        let p = prom_name(name);
        match metric {
            Metric::Counter(c) => {
                out.push_str(&format!("# TYPE {p} counter\n{p} {}\n", c.get()));
            }
            Metric::Gauge(g) => {
                out.push_str(&format!("# TYPE {p} gauge\n{p} {}\n", g.get()));
            }
            Metric::Hist(h) => {
                out.push_str(&format!(
                    "# TYPE {p} summary\n\
                     {p}{{quantile=\"0.5\"}} {}\n\
                     {p}{{quantile=\"0.99\"}} {}\n\
                     {p}_sum {}\n\
                     {p}_count {}\n",
                    h.quantile(50),
                    h.quantile(99),
                    h.sum(),
                    h.count()
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Trace export (JSONL)
// ---------------------------------------------------------------------------

struct TraceSink {
    path: PathBuf,
    /// First flush truncates; later flushes append (one file can hold
    /// several engine runs).
    truncated: bool,
}

static SINK: Mutex<Option<TraceSink>> = Mutex::new(None);

/// Enables span/event recording and routes [`flush_trace`] output to
/// `path`. Discards any records buffered before the call so the file
/// starts clean. Programmatic equivalent of `MEISSA_TRACE=<path>`.
pub fn trace_to(path: impl Into<PathBuf>) {
    let _ = drain();
    *SINK.lock().unwrap() = Some(TraceSink { path: path.into(), truncated: false });
    set_flag(F_TRACE, true);
}

/// Stops span/event recording (the sink path is kept; a later
/// [`trace_to`] replaces it). Pending records stay buffered until the
/// next [`flush_trace`] or [`drain`].
pub fn trace_off() {
    set_flag(F_TRACE, false);
}

fn field_obj(fields: &[(&'static str, u64)]) -> Json {
    Json::Obj(fields.iter().map(|&(k, v)| (k.to_string(), Json::UInt(v as u128))).collect())
}

/// JSON form of one record — the schema `meissa-trace` consumes.
pub fn record_json(r: &Record) -> Json {
    match r {
        Record::Span { id, parent, tid, name, start_ns, dur_ns, fields } => Json::Obj(vec![
            ("t".into(), Json::Str("span".into())),
            ("name".into(), Json::Str((*name).into())),
            ("id".into(), Json::UInt(*id as u128)),
            ("parent".into(), Json::UInt(*parent as u128)),
            ("tid".into(), Json::UInt(*tid as u128)),
            ("start_ns".into(), Json::UInt(*start_ns as u128)),
            ("dur_ns".into(), Json::UInt(*dur_ns as u128)),
            ("fields".into(), field_obj(fields)),
        ]),
        Record::Event { tid, span, name, at_ns, fields } => Json::Obj(vec![
            ("t".into(), Json::Str("event".into())),
            ("name".into(), Json::Str((*name).into())),
            ("tid".into(), Json::UInt(*tid as u128)),
            ("span".into(), Json::UInt(*span as u128)),
            ("at_ns".into(), Json::UInt(*at_ns as u128)),
            ("fields".into(), field_obj(fields)),
        ]),
        Record::Note { tid, name, at_ns, data } => Json::Obj(vec![
            ("t".into(), Json::Str("note".into())),
            ("name".into(), Json::Str((*name).into())),
            ("tid".into(), Json::UInt(*tid as u128)),
            ("at_ns".into(), Json::UInt(*at_ns as u128)),
            (
                "data".into(),
                // Invalid payloads survive as a plain string rather than
                // corrupting the trace line.
                Json::parse(data).unwrap_or_else(|_| Json::Str(data.clone())),
            ),
        ]),
    }
}

/// Drains buffered records and appends them to the configured trace file
/// as JSONL, preceded (on the first flush) by a `meta` line and followed
/// by a snapshot of every registered metric. No-op without a sink.
pub fn flush_trace() -> std::io::Result<()> {
    let mut guard = SINK.lock().unwrap();
    let Some(sink) = guard.as_mut() else {
        return Ok(());
    };
    let records = {
        let mut out = PARKED.lock().map(|mut p| std::mem::take(&mut *p)).unwrap_or_default();
        with_tls(|s| out.append(&mut s.buf));
        out.sort_by_key(Record::sort_key);
        out
    };
    let first = !std::mem::replace(&mut sink.truncated, true);
    if let Some(dir) = sink.path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = if first {
        OpenOptions::new().create(true).write(true).truncate(true).open(&sink.path)?
    } else {
        OpenOptions::new().create(true).append(true).open(&sink.path)?
    };
    let mut text = String::new();
    if first {
        let meta = Json::Obj(vec![
            ("t".into(), Json::Str("meta".into())),
            ("version".into(), Json::UInt(1)),
        ]);
        text.push_str(&meta.to_text());
        text.push('\n');
    }
    for r in &records {
        text.push_str(&record_json(r).to_text());
        text.push('\n');
    }
    // Metric snapshot: cumulative values as of this flush.
    let m = METRICS.lock().unwrap();
    for (name, metric) in m.iter() {
        let row = match metric {
            Metric::Counter(c) => Json::Obj(vec![
                ("t".into(), Json::Str("counter".into())),
                ("name".into(), Json::Str((*name).into())),
                ("value".into(), Json::UInt(c.get() as u128)),
            ]),
            Metric::Gauge(g) => Json::Obj(vec![
                ("t".into(), Json::Str("gauge".into())),
                ("name".into(), Json::Str((*name).into())),
                ("value".into(), Json::UInt(g.get() as u128)),
            ]),
            Metric::Hist(h) => Json::Obj(vec![
                ("t".into(), Json::Str("hist".into())),
                ("name".into(), Json::Str((*name).into())),
                ("count".into(), Json::UInt(h.count() as u128)),
                ("sum".into(), Json::UInt(h.sum() as u128)),
                ("p50".into(), Json::UInt(h.quantile(50) as u128)),
                ("p99".into(), Json::UInt(h.quantile(99) as u128)),
            ]),
        };
        text.push_str(&row.to_text());
        text.push('\n');
    }
    f.write_all(text.as_bytes())
}

// ---------------------------------------------------------------------------
// Env-driven init
// ---------------------------------------------------------------------------

/// Reads `MEISSA_TRACE`, `MEISSA_LOG`, and `MEISSA_LEDGER` once per
/// process and configures the module accordingly. Cheap to call from
/// every engine entry point.
pub fn init_from_env() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        if let Ok(path) = std::env::var("MEISSA_TRACE") {
            if !path.is_empty() {
                trace_to(path);
            }
        }
        match std::env::var("MEISSA_LOG").as_deref() {
            Ok("info") => set_log(LogLevel::Info),
            Ok("debug") => set_log(LogLevel::Debug),
            _ => {}
        }
        if let Ok(path) = std::env::var("MEISSA_LEDGER") {
            if !path.is_empty() {
                ledger::ledger_to(path);
            }
        }
    });
}

/// Test helper: disables tracing/logging and discards buffered records
/// and the sink. Metric values persist (they are cumulative per
/// process).
pub fn reset_for_test() {
    FLAGS.store(0, Ordering::Relaxed);
    *SINK.lock().unwrap() = None;
    let _ = drain();
    ledger::ledger_off();
}

// ---------------------------------------------------------------------------
// Run ledger (append-only JSONL of RunRecords)
// ---------------------------------------------------------------------------

/// The persistent run ledger: an append-only JSONL file of self-contained
/// `RunRecord` objects (program hash, rule-set hash, config fingerprint,
/// run counters, coverage map, latency snapshot). Each line gets a
/// content-hashed `id` over its body, so identical runs produce identical
/// ids and any later mutation is detectable. Enabled by
/// `MEISSA_LEDGER=<path>` (via [`super::init_from_env`]) or
/// programmatically with [`ledger_to`].
///
/// Like the rest of this module, the ledger is a strictly write-only side
/// channel: whether it is enabled must never change an engine's templates,
/// stats, or goldens (`suite/tests/ledger_determinism.rs` asserts it).
pub mod ledger {
    use super::*;
    use std::sync::atomic::AtomicBool;

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static LEDGER: Mutex<Option<PathBuf>> = Mutex::new(None);

    /// Routes [`append`] to `path` (created on first append, parent dirs
    /// included). Programmatic equivalent of `MEISSA_LEDGER=<path>`.
    pub fn ledger_to(path: impl Into<PathBuf>) {
        *LEDGER.lock().unwrap() = Some(path.into());
        ENABLED.store(true, Ordering::Relaxed);
    }

    /// Disables the ledger and forgets the path.
    pub fn ledger_off() {
        ENABLED.store(false, Ordering::Relaxed);
        *LEDGER.lock().unwrap() = None;
    }

    /// Whether a ledger sink is configured. Gate record *construction* on
    /// this — hashing a program is not free.
    #[inline]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// FNV-1a 64-bit over raw bytes: the ledger's content hash. Stable,
    /// dependency-free, and plenty for content addressing of run records
    /// (collisions only confuse a diff into comparing unlike runs, which
    /// the embedded counters then expose).
    pub fn content_hash(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Hex form of [`content_hash`] — the `id`/`program_hash` rendering.
    pub fn content_hash_hex(bytes: &[u8]) -> String {
        format!("{:016x}", content_hash(bytes))
    }

    /// Appends one record: `body` (a JSON object) is prefixed with an `id`
    /// content-hashed over the body's rendered text, then written as one
    /// JSONL line. Returns the id. No-op (returns an empty id) when the
    /// ledger is disabled, so call sites need no gating of their own —
    /// though they should gate record *construction* on [`enabled`].
    pub fn append(body: Json) -> std::io::Result<String> {
        let guard = LEDGER.lock().unwrap();
        let Some(path) = guard.as_ref() else {
            return Ok(String::new());
        };
        let body_fields = match body {
            Json::Obj(fields) => fields,
            other => vec![("body".to_string(), other)],
        };
        let body_text = Json::Obj(body_fields.clone()).to_text();
        let id = content_hash_hex(body_text.as_bytes());
        let mut fields = vec![("id".to_string(), Json::Str(id.clone()))];
        fields.extend(body_fields);
        let line = Json::Obj(fields).to_text();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut f = OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(line.as_bytes())?;
        f.write_all(b"\n")?;
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Obs state is process-global; tests serialize on this.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_path_records_nothing() {
        let _g = lock();
        reset_for_test();
        {
            let mut s = span("quiet");
            s.field("x", 1);
            event("nope", &[("k", 2)]);
        }
        assert!(drain().is_empty());
        assert!(!active());
    }

    #[test]
    fn span_nesting_sets_parents() {
        let _g = lock();
        reset_for_test();
        set_flag(F_TRACE, true);
        {
            let mut outer = span("outer");
            outer.field("n", 7);
            {
                let _inner = span("inner");
                event("tick", &[("v", 3)]);
            }
        }
        set_flag(F_TRACE, false);
        let records = drain();
        assert_eq!(records.len(), 3);
        let (mut outer_id, mut inner_parent, mut event_span) = (0, 0, 0);
        let mut inner_id = 0;
        for r in &records {
            match r {
                Record::Span { name: "outer", id, parent, fields, .. } => {
                    outer_id = *id;
                    assert_eq!(*parent, 0);
                    assert_eq!(fields.as_slice(), &[("n", 7)]);
                }
                Record::Span { name: "inner", id, parent, .. } => {
                    inner_id = *id;
                    inner_parent = *parent;
                }
                Record::Event { name: "tick", span, fields, .. } => {
                    event_span = *span;
                    assert_eq!(fields.as_slice(), &[("v", 3)]);
                }
                other => panic!("unexpected record {other:?}"),
            }
        }
        assert_eq!(inner_parent, outer_id);
        assert_eq!(event_span, inner_id);
    }

    #[test]
    fn span_timestamps_are_monotonic_and_nested() {
        let _g = lock();
        reset_for_test();
        set_flag(F_TRACE, true);
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        set_flag(F_TRACE, false);
        let recs = drain();
        let find = |n: &str| {
            recs.iter()
                .find_map(|r| match r {
                    Record::Span { name, start_ns, dur_ns, .. } if *name == n => {
                        Some((*start_ns, *dur_ns))
                    }
                    _ => None,
                })
                .unwrap()
        };
        let (os, od) = find("outer");
        let (is_, id) = find("inner");
        assert!(os <= is_, "inner starts after outer");
        assert!(is_ + id <= os + od, "inner ends before outer");
    }

    #[test]
    fn trace_file_is_valid_jsonl() {
        let _g = lock();
        reset_for_test();
        let path = std::env::temp_dir().join(format!("obs_test_{}.jsonl", std::process::id()));
        trace_to(&path);
        {
            let _s = span("root");
            event("e", &[("a", 1)]);
        }
        flush_trace().unwrap();
        trace_off();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut kinds = Vec::new();
        for line in text.lines() {
            let v = Json::parse(line).expect("line parses");
            kinds.push(v.get("t").and_then(|t| t.as_str().ok()).unwrap().to_string());
        }
        assert_eq!(kinds[0], "meta");
        assert!(kinds.iter().any(|k| k == "span"));
        assert!(kinds.iter().any(|k| k == "event"));
        let _ = std::fs::remove_file(&path);
        reset_for_test();
    }

    #[test]
    fn counters_and_gauges_register_once() {
        let _g = lock();
        let c = counter("test.counter_once");
        c.add(3);
        counter("test.counter_once").add(4);
        assert_eq!(counter("test.counter_once").get(), 7);
        let g = gauge("test.gauge_once");
        g.set(9);
        assert_eq!(gauge("test.gauge_once").get(), 9);
    }

    #[test]
    fn histogram_quantiles_are_log2_lower_bounds() {
        let _g = lock();
        let h = histogram("test.hist_q");
        for v in [1u64, 2, 3, 100, 100, 100, 100, 100, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 1606);
        // p50 of ten samples ranks into the 100s bucket: [64, 128).
        assert_eq!(h.quantile(50), 64);
        // p99 ranks into the 1000 bucket: [512, 1024).
        assert_eq!(h.quantile(99), 512);
    }

    #[test]
    fn percentile_index_matches_report_formula() {
        // Same formula driver::report used inline before the hoist.
        for (len, p) in [(1usize, 50u32), (10, 50), (10, 99), (100, 99), (7, 95)] {
            let expected = (p as usize * (len - 1) + 50) / 100;
            assert_eq!(percentile_index(len, p), expected);
        }
    }

    #[test]
    fn prometheus_text_has_type_lines() {
        let _g = lock();
        counter("test.prom_counter").add(5);
        gauge("test.prom_gauge").set(2);
        histogram("test.prom_hist").record(10);
        let text = metrics_text();
        assert!(text.contains("# TYPE meissa_test_prom_counter counter"));
        assert!(text.contains("meissa_test_prom_counter 5"));
        assert!(text.contains("# TYPE meissa_test_prom_gauge gauge"));
        assert!(text.contains("# TYPE meissa_test_prom_hist summary"));
        assert!(text.contains("meissa_test_prom_hist_count 1"));
        assert!(text.contains("quantile=\"0.5\""));
    }

    #[test]
    fn parked_records_survive_thread_exit() {
        let _g = lock();
        reset_for_test();
        set_flag(F_TRACE, true);
        std::thread::scope(|s| {
            s.spawn(|| {
                let _sp = span("worker");
                event("inside", &[]);
            });
        });
        set_flag(F_TRACE, false);
        let recs = drain();
        assert_eq!(recs.len(), 2, "worker records parked at thread exit: {recs:?}");
    }

    #[test]
    fn span_closed_records_retroactively() {
        let _g = lock();
        reset_for_test();
        set_flag(F_TRACE, true);
        span_closed("case", 100, 50, &[("id", 4)]);
        set_flag(F_TRACE, false);
        match drain().as_slice() {
            [Record::Span { name: "case", start_ns: 100, dur_ns: 50, fields, .. }] => {
                assert_eq!(fields.as_slice(), &[("id", 4)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Asserts `metrics_text` output is well-formed Prometheus text
    /// exposition: every line is a comment or `name[{labels}] value` with a
    /// numeric value.
    fn assert_prometheus_parseable(text: &str) {
        for line in text.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name_part, value) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("no value separator in {line:?}"));
            assert!(
                value.parse::<f64>().is_ok(),
                "non-numeric value in {line:?}"
            );
            let bare = name_part.split('{').next().unwrap();
            assert!(
                !bare.is_empty()
                    && bare
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in {line:?}"
            );
            if let Some(rest) = name_part.split_once('{').map(|(_, r)| r) {
                assert!(rest.ends_with('}'), "unclosed label set in {line:?}");
            }
        }
    }

    #[test]
    fn empty_histogram_quantiles_are_zero_and_exposition_parses() {
        let _g = lock();
        let h = histogram("test.hist_empty");
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        for p in [0, 50, 99, 100] {
            assert_eq!(h.quantile(p), 0, "p{p} of an empty histogram");
        }
        let text = metrics_text();
        assert!(text.contains("meissa_test_hist_empty_count 0"));
        assert_prometheus_parseable(&text);
    }

    #[test]
    fn single_sample_histogram_pins_every_quantile() {
        let _g = lock();
        let h = histogram("test.hist_single");
        h.record(100);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 100);
        // One sample: every rank lands in its bucket's lower bound [64,128).
        for p in [0, 50, 99, 100] {
            assert_eq!(h.quantile(p), 64, "p{p} of a single-sample histogram");
        }
        assert_prometheus_parseable(&metrics_text());
    }

    #[test]
    fn values_beyond_top_bucket_saturate_without_overflow() {
        let _g = lock();
        let h = histogram("test.hist_top");
        h.record(u64::MAX);
        h.record(1u64 << 63);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), u64::MAX.wrapping_add(1u64 << 63), "sum wraps, count rules");
        // Both land in the top bucket; the reported quantile is the top
        // bucket's lower bound, not a wrapped/overflowed value.
        assert_eq!(h.quantile(50), 1u64 << 63);
        assert_eq!(h.quantile(99), 1u64 << 63);
        assert_prometheus_parseable(&metrics_text());
    }

    #[test]
    fn note_records_carry_embedded_json_payloads() {
        let _g = lock();
        reset_for_test();
        set_flag(F_TRACE, true);
        note("coverage", "[{\"table\":\"t\",\"rules\":[[0,1]]}]".to_string());
        set_flag(F_TRACE, false);
        let recs = drain();
        match recs.as_slice() {
            [Record::Note { name: "coverage", data, .. }] => {
                let v = record_json(&recs[0]);
                assert_eq!(v.get("t").unwrap().as_str().unwrap(), "note");
                // Payload embeds as structured JSON, not a quoted string.
                let emb = v.get("data").unwrap();
                assert!(matches!(emb, Json::Arr(_)), "{emb:?} from {data:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
        reset_for_test();
    }

    #[test]
    fn ledger_appends_content_hashed_lines() {
        let _g = lock();
        reset_for_test();
        let path = std::env::temp_dir().join(format!("obs_ledger_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        assert!(!ledger::enabled());
        // Disabled: append is a no-op returning an empty id.
        assert_eq!(ledger::append(Json::Obj(vec![])).unwrap(), "");

        ledger::ledger_to(&path);
        assert!(ledger::enabled());
        let body = || {
            Json::Obj(vec![
                ("kind".to_string(), Json::Str("engine.run".into())),
                ("smt_checks".to_string(), Json::UInt(42)),
            ])
        };
        let id1 = ledger::append(body()).unwrap();
        let id2 = ledger::append(body()).unwrap();
        let id3 = ledger::append(Json::Obj(vec![(
            "kind".to_string(),
            Json::Str("wire.soak".into()),
        )]))
        .unwrap();
        ledger::ledger_off();
        assert!(!ledger::enabled());

        assert_eq!(id1, id2, "identical bodies hash to identical ids");
        assert_ne!(id1, id3);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "append-only, one line per record");
        for (line, want_id) in lines.iter().zip([&id1, &id2, &id3]) {
            let v = Json::parse(line).expect("ledger line parses");
            assert_eq!(v.get("id").unwrap().as_str().unwrap(), want_id.as_str());
            // The id is reproducible from the body: strip it and re-hash.
            let Json::Obj(fields) = v else { panic!() };
            let body: Vec<_> = fields.into_iter().filter(|(k, _)| k != "id").collect();
            let rehash = ledger::content_hash_hex(Json::Obj(body).to_text().as_bytes());
            assert_eq!(&rehash, want_id);
        }
        let _ = std::fs::remove_file(&path);
    }
}
