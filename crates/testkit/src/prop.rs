//! A minimal property-testing harness.
//!
//! A property is a closure `Fn(&mut G) -> Result<(), String>`: it draws
//! arbitrary inputs from [`G`] and returns `Err` (usually via
//! [`prop_assert!`](crate::prop_assert)) when the property is violated.
//! [`check`] runs the closure over many deterministic seeds; on failure it
//! *shrinks* the failing case and panics with the minimized report.
//!
//! Shrinking is internal (tape-based): every draw is recorded as an offset
//! from its range's minimum, and the shrinker replays mutated tapes —
//! zeroing and halving entries — re-running the property each time. Because
//! generators map smaller offsets to simpler choices (earlier enum
//! variants, shorter collections, smaller integers), halving the tape
//! halves the structure, which is exactly the "shrinking by halving for
//! integer/bitvector inputs" this workspace needs.

use crate::rng::{RngExt, SampleRange, SeedableRng, StdRng, UniformInt};

/// Default number of cases when the caller does not specify one.
pub const DEFAULT_CASES: u32 = 64;

/// Base seed for case generation; override with `MEISSA_PROP_SEED` to
/// explore a different corner of the input space.
fn base_seed() -> u64 {
    std::env::var("MEISSA_PROP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x6d65_6973_7361_2131) // "meissa!1"
}

enum Source {
    /// Fresh generation: draw from the RNG, record offsets on the tape.
    Fresh(StdRng),
    /// Shrink replay: offsets come from a fixed tape; reads past its end
    /// (structure changed under mutation) return 0 — the minimal choice.
    Replay,
}

/// The draw handle passed to properties.
pub struct G {
    source: Source,
    tape: Vec<u128>,
    pos: usize,
}

impl G {
    fn fresh(seed: u64) -> G {
        G {
            source: Source::Fresh(StdRng::seed_from_u64(seed)),
            tape: Vec::new(),
            pos: 0,
        }
    }

    fn replay(tape: Vec<u128>) -> G {
        G {
            source: Source::Replay,
            tape,
            pos: 0,
        }
    }

    /// Core draw: a uniform offset in `0..=span_max`, recorded on the tape.
    fn offset(&mut self, span_max: u128) -> u128 {
        let v = match &mut self.source {
            Source::Fresh(rng) => {
                let v = if span_max == u128::MAX {
                    rng.next_u128()
                } else {
                    rng.random_range(0..=span_max)
                };
                self.tape.push(v);
                v
            }
            Source::Replay => {
                let raw = self.tape.get(self.pos).copied().unwrap_or(0);
                // A mutated entry may exceed the span asked for at this
                // position (structure drifted); clamp instead of wrapping so
                // shrinking stays monotone.
                raw.min(span_max)
            }
        };
        self.pos += 1;
        v
    }

    /// A uniform draw from an integer range (`lo..hi` or `lo..=hi`).
    pub fn range<T: UniformInt, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds_inclusive();
        let (lo_u, hi_u) = (lo.to_u128(), hi.to_u128());
        T::from_u128(lo_u + self.offset(hi_u - lo_u))
    }

    /// An arbitrary `u64` (shrinks toward 0).
    pub fn u64(&mut self) -> u64 {
        self.range(0..=u64::MAX)
    }

    /// An arbitrary `u32` (shrinks toward 0).
    pub fn u32(&mut self) -> u32 {
        self.range(0..=u32::MAX)
    }

    /// An arbitrary bitvector payload of the given bit width.
    pub fn bits(&mut self, width: u16) -> u128 {
        let max = if width >= 128 {
            u128::MAX
        } else {
            (1u128 << width) - 1
        };
        self.offset(max)
    }

    /// A boolean (shrinks toward `false`).
    pub fn bool(&mut self) -> bool {
        self.offset(1) == 1
    }

    /// An index into `0..n` (shrinks toward 0 — put simpler variants first).
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty choice set");
        self.offset(n as u128 - 1) as usize
    }

    /// A collection length in `min..=max` (shrinks toward `min`).
    pub fn len(&mut self, min: usize, max: usize) -> usize {
        self.range(min..=max)
    }

    /// A lowercase identifier like `[a-z][a-z0-9_]{0,extra}`.
    pub fn ident(&mut self, extra: usize) -> String {
        const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
        const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
        let mut s = String::new();
        s.push(FIRST[self.index(FIRST.len())] as char);
        for _ in 0..self.len(0, extra) {
            s.push(REST[self.index(REST.len())] as char);
        }
        s
    }
}

/// Runs `f` over `cases` deterministic inputs; shrinks and panics on the
/// first failure.
///
/// # Panics
/// Panics with the (shrunk) failure report when the property is violated.
pub fn check<F>(cases: u32, f: F)
where
    F: Fn(&mut G) -> Result<(), String>,
{
    let base = base_seed();
    for case in 0..cases {
        let mut g = G::fresh(base.wrapping_add(case as u64));
        if let Err(msg) = f(&mut g) {
            let (tape, final_msg, rounds) = shrink(&f, g.tape, msg);
            panic!(
                "property failed (case {case}/{cases}, shrunk {rounds} rounds, \
                 {} draws): {final_msg}\n(rerun with MEISSA_PROP_SEED={base})",
                tape.len(),
            );
        }
    }
}

/// Shrinks a failing tape by halving: each entry is binary-searched down to
/// the smallest value under which the property still fails, repeated until
/// a whole pass makes no progress.
fn shrink<F>(f: &F, mut tape: Vec<u128>, mut msg: String) -> (Vec<u128>, String, u32)
where
    F: Fn(&mut G) -> Result<(), String>,
{
    let still_fails = |t: &[u128]| -> Option<String> {
        f(&mut G::replay(t.to_vec())).err()
    };
    let mut rounds = 0;
    const MAX_ROUNDS: u32 = 8;
    loop {
        let mut improved = false;
        for i in 0..tape.len() {
            if tape[i] == 0 {
                continue;
            }
            let orig = tape[i];
            tape[i] = 0;
            if still_fails(&tape).is_some() {
                improved = true;
                continue;
            }
            // Binary search the boundary: `hi` fails, everything <= `lo`
            // passes. Invariant holds because `orig` failed and 0 passed.
            let (mut lo, mut hi) = (0u128, orig);
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                tape[i] = mid;
                if still_fails(&tape).is_some() {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            tape[i] = hi;
            if hi < orig {
                improved = true;
            }
        }
        rounds += 1;
        if !improved || rounds >= MAX_ROUNDS {
            // One final replay so the reported message (and any state the
            // property captured) reflects the minimized tape exactly.
            if let Some(m) = still_fails(&tape) {
                msg = m;
            }
            return (tape, msg, rounds);
        }
    }
}

/// Asserts a condition inside a property, returning `Err` on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property, returning `Err` on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: `{:?}` != `{:?}` ({}:{})",
                a,
                b,
                file!(),
                line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!($($fmt)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0;
        // `check` takes Fn, so count via a Cell.
        let counter = std::cell::Cell::new(0u32);
        check(32, |g| {
            counter.set(counter.get() + 1);
            let a = g.u64();
            let b = g.u64();
            prop_assert_eq!(
                a.wrapping_add(b),
                b.wrapping_add(a),
                "addition commutes"
            );
            Ok(())
        });
        ran += counter.get();
        assert_eq!(ran, 32);
    }

    #[test]
    fn failing_property_shrinks_to_boundary() {
        // Property "x < 100" fails for x >= 100; the shrinker must land on
        // exactly 100 (halving + decrement reaches the boundary).
        let witness = std::cell::Cell::new(0u64);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check(256, |g| {
                let x = g.u64();
                if x >= 100 {
                    witness.set(x);
                    Err(format!("x = {x} too large"))
                } else {
                    Ok(())
                }
            });
        }));
        assert!(result.is_err(), "property must fail");
        assert_eq!(witness.get(), 100, "shrunk to the minimal counterexample");
    }

    #[test]
    fn replay_past_tape_end_is_minimal() {
        let mut g = G::replay(vec![5]);
        assert_eq!(g.range(0..=10u32), 5);
        assert_eq!(g.range(0..=10u32), 0, "past-end draw is the minimum");
        assert!(!g.bool());
    }

    #[test]
    fn ident_shape() {
        let mut g = G::fresh(1);
        for _ in 0..50 {
            let s = g.ident(8);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let draw = |seed| {
            let mut g = G::fresh(seed);
            (g.u64(), g.index(7), g.bits(32))
        };
        assert_eq!(draw(11), draw(11));
        assert_ne!(draw(11), draw(12));
    }
}
