//! `meissa-testkit`: zero-dependency test infrastructure for the hermetic
//! workspace.
//!
//! The build environment has no network and no crates.io registry cache, so
//! everything the workspace used external crates for lives here instead:
//!
//! - [`rng`] — seeded deterministic RNG (`StdRng::seed_from_u64` +
//!   `random_range`), replacing `rand` for rule/program generation.
//! - [`prop`] — property-testing harness with tape-based shrinking,
//!   replacing `proptest`.
//! - [`json`] — `ToJson`/`FromJson` traits plus a hand-written JSON
//!   encoder/parser, replacing the `serde`/`serde_json` derive stack.
//! - [`bench`] — warmup + N-iteration micro-bench timer with median/p95
//!   reporting, replacing `criterion`.
//! - [`wire`] — length-framed message transport (4-byte big-endian length
//!   prefix) over any `Read`/`Write`, used by the `meissa-netdriver` wire
//!   protocol.
//!
//! This crate must stay dependency-free (including on other `meissa-*`
//! crates): it is the root every other crate's dev/test plumbing hangs off.

pub mod bench;
pub mod json;
pub mod obs;
pub mod prop;
pub mod rng;
pub mod wire;

pub use json::{FromJson, Json, JsonError, ToJson};
pub use prop::G;
pub use rng::{RngExt, SeedableRng, StdRng};
pub use wire::{write_frame, FrameReader, MAX_FRAME};
