//! A micro-benchmark timer: warmup, N timed iterations, median/p95 report.
//!
//! Replaces `criterion` for this workspace's `harness = false` bench
//! targets. The design goal is legible, deterministic-shape output — not
//! statistical rigor: each sample is one closure invocation timed with
//! `Instant`, and the report prints min/median/p95/mean so regressions are
//! visible at a glance in CI logs.

use std::time::{Duration, Instant};

/// Re-export of the optimization barrier benches should wrap outputs in.
pub use std::hint::black_box;

/// Timing summary for one benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark label.
    pub name: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample.
    pub min: Duration,
    /// 50th percentile sample.
    pub median: Duration,
    /// 95th percentile sample.
    pub p95: Duration,
    /// Arithmetic mean of samples.
    pub mean: Duration,
}

impl BenchResult {
    /// One-line human report, e.g.
    /// `fig9/depth=4  median 1.234ms  p95 1.301ms  min 1.198ms  (20 samples)`.
    pub fn line(&self) -> String {
        format!(
            "{:<40} median {:>10}  p95 {:>10}  min {:>10}  ({} samples)",
            self.name,
            fmt_duration(self.median),
            fmt_duration(self.p95),
            fmt_duration(self.min),
            self.samples,
        )
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.3}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.3}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Runs one benchmark: `warmup` unmeasured invocations, then `samples`
/// timed ones.
///
/// The closure should produce its result through [`black_box`] so the
/// optimizer cannot delete the measured work.
pub fn run<F: FnMut()>(name: &str, warmup: usize, samples: usize, mut f: F) -> BenchResult {
    assert!(samples > 0, "benchmark needs at least one sample");
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        times.push(start.elapsed());
    }
    times.sort();
    let total: Duration = times.iter().sum();
    BenchResult {
        name: name.to_owned(),
        samples,
        min: times[0],
        median: times[times.len() / 2],
        // Nearest-rank p95, clamped to the last sample.
        p95: times[((times.len() * 95).div_ceil(100)).saturating_sub(1).min(times.len() - 1)],
        mean: total / samples as u32,
    }
}

/// A named group of benchmarks printed criterion-style as they complete.
pub struct Suite {
    group: String,
    warmup: usize,
    samples: usize,
    results: Vec<BenchResult>,
}

impl Suite {
    /// Creates a suite with default warmup (2) and sample (10) counts.
    pub fn new(group: &str) -> Suite {
        Suite {
            group: group.to_owned(),
            warmup: 2,
            samples: 10,
            results: Vec::new(),
        }
    }

    /// Overrides the per-benchmark sample count.
    pub fn samples(mut self, samples: usize) -> Suite {
        self.samples = samples;
        self
    }

    /// Overrides the unmeasured warmup count.
    pub fn warmup(mut self, warmup: usize) -> Suite {
        self.warmup = warmup;
        self
    }

    /// Times `f` under `<group>/<name>` and prints the result line.
    pub fn bench<F: FnMut()>(&mut self, name: &str, f: F) -> &BenchResult {
        let label = format!("{}/{}", self.group, name);
        let result = run(&label, self.warmup, self.samples, f);
        println!("{}", result.line());
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// All results collected so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_warmup_plus_samples() {
        let count = std::cell::Cell::new(0u32);
        let r = run("counting", 3, 7, || {
            count.set(count.get() + 1);
        });
        assert_eq!(count.get(), 10, "3 warmup + 7 timed");
        assert_eq!(r.samples, 7);
        assert!(r.min <= r.median && r.median <= r.p95);
    }

    #[test]
    fn stats_ordering_holds_on_real_work() {
        let r = run("spin", 1, 20, || {
            let mut acc = 0u64;
            for i in 0..1000 {
                acc = acc.wrapping_add(black_box(i));
            }
            black_box(acc);
        });
        assert!(r.min <= r.median);
        assert!(r.median <= r.p95);
        assert!(r.mean >= r.min && r.mean <= r.p95.max(r.mean));
    }

    #[test]
    fn suite_collects_and_labels() {
        let mut s = Suite::new("unit").samples(3).warmup(0);
        s.bench("a", || {
            black_box(1 + 1);
        });
        s.bench("b", || {
            black_box(2 + 2);
        });
        let names: Vec<&str> = s.results().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["unit/a", "unit/b"]);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.500ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
    }
}
