//! A seeded, deterministic pseudo-random generator with the
//! `StdRng::seed_from_u64` / `random_range` API shape the rest of the
//! workspace uses, so call sites read identically to their pre-hermetic
//! versions.
//!
//! The core is xoshiro256** (Blackman–Vigna) seeded through splitmix64 —
//! both public-domain algorithms with well-studied statistical quality, and
//! small enough to own outright. Determinism is a workspace contract: rule
//! generators and coverage tests assert *golden* sequences per seed, so the
//! algorithm must never change silently. If it ever has to, bump
//! [`STREAM_VERSION`] and update the golden tests deliberately.

/// Version marker for the generator's output stream. Tests pin golden
/// sequences against this; changing the algorithm requires bumping it.
pub const STREAM_VERSION: u32 = 1;

/// Seeding interface: construct a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard generator: xoshiro256**.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 expansion of the seed into the 256-bit state; the
        // all-zero state is unreachable because splitmix64 is a bijection
        // on each step's input.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    /// The next 64 bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 128 bits of the stream (high word drawn first).
    pub fn next_u128(&mut self) -> u128 {
        let hi = self.next_u64() as u128;
        let lo = self.next_u64() as u128;
        (hi << 64) | lo
    }
}

/// Integer types that can be drawn uniformly from a range.
pub trait UniformInt: Copy + PartialOrd {
    /// Widens to the sampling domain.
    fn to_u128(self) -> u128;
    /// Narrows from the sampling domain (value is guaranteed in range).
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u128(self) -> u128 {
                self as u128
            }
            fn from_u128(v: u128) -> Self {
                v as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, u128, usize, i32, i64);

/// Range shapes accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Bounds as an inclusive `[lo, hi]` pair.
    ///
    /// # Panics
    /// Panics on an empty range — an empty draw is always a caller bug.
    fn bounds_inclusive(&self) -> (T, T);
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn bounds_inclusive(&self) -> (T, T) {
        assert!(self.start < self.end, "random_range on empty range");
        (
            self.start,
            T::from_u128(self.end.to_u128() - 1),
        )
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn bounds_inclusive(&self) -> (T, T) {
        assert!(
            self.start().to_u128() <= self.end().to_u128(),
            "random_range on empty range"
        );
        (*self.start(), *self.end())
    }
}

/// Drawing convenience methods over the raw stream.
pub trait RngExt {
    /// The next 64 bits of the stream.
    fn random_u64(&mut self) -> u64;

    /// A uniform draw from the given range (`lo..hi` or `lo..=hi`).
    ///
    /// Uses rejection sampling from the top of the 128-bit stream so the
    /// distribution is exactly uniform for every span.
    fn random_range<T: UniformInt, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// A uniform boolean.
    fn random_bool(&mut self) -> bool {
        self.random_u64() & 1 == 1
    }
}

impl RngExt for StdRng {
    fn random_u64(&mut self) -> u64 {
        self.next_u64()
    }

    fn random_range<T: UniformInt, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds_inclusive();
        let (lo_u, hi_u) = (lo.to_u128(), hi.to_u128());
        let span = hi_u - lo_u + 1; // 0 means the full 2^128 domain
        if span == 0 {
            return T::from_u128(self.next_u128());
        }
        // Rejection zone: the largest multiple of `span` below 2^128.
        let zone = u128::MAX - (u128::MAX - span + 1) % span;
        loop {
            let v = self.next_u128();
            if v <= zone {
                return T::from_u128(lo_u + v % span);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_sequence_seed_1() {
        // STREAM_VERSION 1 golden: the first four raw u64 draws for seed 1.
        // If this test fails, the generator algorithm changed — every seeded
        // artifact in the workspace (rule sets, random programs) changes
        // with it. Bump STREAM_VERSION and regenerate goldens deliberately.
        assert_eq!(STREAM_VERSION, 1);
        let mut r = StdRng::seed_from_u64(1);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r2 = StdRng::seed_from_u64(1);
            (0..4).map(|_| r2.next_u64()).collect()
        };
        assert_eq!(got, again, "same seed, same stream");
        let different: Vec<u64> = {
            let mut r3 = StdRng::seed_from_u64(2);
            (0..4).map(|_| r3.next_u64()).collect()
        };
        assert_ne!(got, different, "different seed, different stream");
    }

    #[test]
    fn golden_sequence_pinned_values() {
        // Pinned concrete values: splitmix64+xoshiro256** are fixed
        // algorithms, so these constants are stable across platforms.
        let mut r = StdRng::seed_from_u64(42);
        let a = r.next_u64();
        let b = r.next_u64();
        let mut r2 = StdRng::seed_from_u64(42);
        assert_eq!(r2.next_u64(), a);
        assert_eq!(r2.next_u64(), b);
        // Distinct successive outputs (sanity, not a statistical claim).
        assert_ne!(a, b);
    }

    #[test]
    fn range_draws_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(0..4);
            assert!((0..4).contains(&v));
            let w: u16 = r.random_range(3..=9u16);
            assert!((3..=9).contains(&w));
            let z: usize = r.random_range(2..=3usize);
            assert!(z == 2 || z == 3);
        }
    }

    #[test]
    fn range_draws_hit_every_value() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..4 drawn in 200 tries");
    }

    #[test]
    fn singleton_range_is_constant() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            assert_eq!(r.random_range(5..=5u32), 5);
        }
    }
}
