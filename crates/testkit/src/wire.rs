//! Length-framed message transport over any `Read`/`Write` pair.
//!
//! The wire driver (`meissa-netdriver`) speaks framed messages over TCP;
//! this module supplies the framing — a 4-byte big-endian length prefix
//! followed by that many payload bytes — plus the fixed-width primitive
//! codec ([`BinWriter`]/[`BinReader`]) the binary hot-path framing is built
//! from. The reader buffers partial frames internally, so a socket read
//! timeout mid-frame never loses stream sync — the next poll resumes where
//! the last one stopped. Completed frames are returned as borrowed slices
//! into one internal buffer that is reused across frames: the steady-state
//! read loop performs no per-frame allocation.

use std::io::{self, ErrorKind, Read, Write};

/// Frames larger than this are rejected as corrupt — a desynchronized
/// stream's "length" is usually garbage, and this bounds the allocation.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// How many bytes one `read` syscall asks for. Large enough to drain many
/// coalesced frames per syscall.
const READ_CHUNK: usize = 64 * 1024;

/// Writes one length-prefixed frame and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    frame_into_buf(&mut Vec::new(), payload)?; // length check only
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Appends one length-prefixed frame to an output buffer *without* writing
/// to any stream — the batching side of the framing: coalesce many frames
/// into one buffer, then issue a single `write` syscall.
pub fn frame_into(out: &mut Vec<u8>, payload: &[u8]) -> io::Result<()> {
    frame_into_buf(out, payload)?;
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

fn frame_into_buf(_out: &mut Vec<u8>, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    Ok(())
}

/// Incremental frame reader. Keeps partially-read frames across calls so a
/// read timeout between (or inside) frames is recoverable. The internal
/// buffer is reused across frames; completed frames are handed out as
/// borrowed slices, so the steady state allocates nothing per frame.
pub struct FrameReader<R> {
    inner: R,
    /// Bytes received but not yet consumed. `buf[start..]` is live.
    buf: Vec<u8>,
    /// Read cursor into `buf` (everything before it was handed out).
    start: usize,
    /// Payload length of the frame being assembled, once its header is in.
    want: Option<usize>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        FrameReader {
            inner,
            buf: Vec::new(),
            start: 0,
            want: None,
        }
    }

    /// The wrapped stream (e.g. to adjust socket timeouts).
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Checks whether a complete frame is buffered; consumes the header and
    /// returns the payload length if so. No allocation, no syscall.
    fn check_ready(&mut self) -> io::Result<Option<usize>> {
        if self.want.is_none() && self.buf.len() - self.start >= 4 {
            let h = &self.buf[self.start..self.start + 4];
            let len = u32::from_be_bytes([h[0], h[1], h[2], h[3]]) as usize;
            if len > MAX_FRAME {
                return Err(io::Error::new(
                    ErrorKind::InvalidData,
                    format!("frame header claims {len} bytes; stream desynchronized"),
                ));
            }
            self.start += 4;
            self.want = Some(len);
        }
        match self.want {
            Some(len) if self.buf.len() - self.start >= len => Ok(Some(len)),
            _ => Ok(None),
        }
    }

    /// Hands out a completed frame of `len` bytes and advances the cursor.
    fn take_ready(&mut self, len: usize) -> &[u8] {
        let at = self.start;
        self.start += len;
        self.want = None;
        &self.buf[at..at + len]
    }

    /// One `read` syscall into the tail of the internal buffer. Returns
    /// `false` when the read would block / timed out. Compacts the buffer
    /// first so consumed bytes do not accumulate.
    fn fill_once(&mut self) -> io::Result<bool> {
        if self.start == self.buf.len() {
            // Cheap common case: everything consumed, restart at zero.
            self.buf.clear();
            self.start = 0;
        } else if self.start >= READ_CHUNK {
            // Mid-frame with a long consumed prefix: slide it out.
            self.buf.drain(..self.start);
            self.start = 0;
        }
        let old = self.buf.len();
        self.buf.resize(old + READ_CHUNK, 0);
        loop {
            match self.inner.read(&mut self.buf[old..]) {
                Ok(0) => {
                    self.buf.truncate(old);
                    return Err(io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "stream closed mid-conversation",
                    ));
                }
                Ok(n) => {
                    self.buf.truncate(old + n);
                    return Ok(true);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                {
                    self.buf.truncate(old);
                    return Ok(false);
                }
                Err(e) => {
                    self.buf.truncate(old);
                    return Err(e);
                }
            }
        }
    }

    /// Completes a frame from already-buffered bytes alone — no syscall.
    /// The agent's read-batch loop drains these after each blocking read,
    /// so many coalesced requests cost one syscall total.
    pub fn buffered_frame(&mut self) -> io::Result<Option<&[u8]>> {
        match self.check_ready()? {
            Some(len) => Ok(Some(self.take_ready(len))),
            None => Ok(None),
        }
    }

    /// Reads until one frame is complete, a read would block/time out
    /// (`Ok(None)`), or the stream errors. EOF mid-stream surfaces as
    /// `UnexpectedEof`.
    pub fn poll_frame(&mut self) -> io::Result<Option<&[u8]>> {
        let len = loop {
            if let Some(len) = self.check_ready()? {
                break len;
            }
            if !self.fill_once()? {
                return Ok(None);
            }
        };
        Ok(Some(self.take_ready(len)))
    }

    /// Blocks until a frame arrives (retrying over read timeouts).
    pub fn next_frame(&mut self) -> io::Result<&[u8]> {
        let len = loop {
            if let Some(len) = self.check_ready()? {
                break len;
            }
            self.fill_once()?;
        };
        Ok(self.take_ready(len))
    }
}

/// Fixed-width big-endian primitive writer — the building blocks of the
/// binary hot-path codec. All widths are explicit; no varints, so encode
/// and decode are branch-free per field.
#[derive(Default)]
pub struct BinWriter {
    buf: Vec<u8>,
}

impl BinWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer reusing `buf` (cleared) — lets hot loops recycle one
    /// allocation across messages.
    pub fn reuse(mut buf: Vec<u8>) -> Self {
        buf.clear();
        BinWriter { buf }
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Length-prefixed (u32) raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Unprefixed raw bytes — for fields whose length the layout implies
    /// (e.g. a bitvector value sized by its already-written width).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed (u16) UTF-8 string — for short interned names.
    pub fn str16(&mut self, v: &str) {
        debug_assert!(v.len() <= u16::MAX as usize, "str16 name too long");
        self.u16(v.len() as u16);
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// Decode-side twin of [`BinWriter`]. All reads are bounds-checked; any
/// overrun or malformed field yields an `InvalidData` error rather than a
/// panic, since frames cross a trust boundary.
pub struct BinReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> BinReader<'a> {
    /// Reads from the byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        BinReader { buf, at: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.at == self.buf.len()
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.buf.len() - self.at < n {
            return Err(io::Error::new(
                ErrorKind::InvalidData,
                "binary frame truncated",
            ));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn u128(&mut self) -> io::Result<u128> {
        Ok(u128::from_be_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Length-prefixed (u32) raw bytes.
    pub fn bytes(&mut self) -> io::Result<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Exactly `n` unprefixed raw bytes (twin of [`BinWriter::raw`]).
    pub fn raw(&mut self, n: usize) -> io::Result<&'a [u8]> {
        self.take(n)
    }

    /// Length-prefixed (u16) UTF-8 string.
    pub fn str16(&mut self) -> io::Result<&'a str> {
        let n = self.u16()? as usize;
        std::str::from_utf8(self.take(n)?)
            .map_err(|_| io::Error::new(ErrorKind::InvalidData, "binary frame: bad UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that delivers its script one slice per `read` call, with
    /// `WouldBlock` errors interleaved — a socket with a short timeout.
    struct Chunked {
        chunks: Vec<Option<Vec<u8>>>,
        at: usize,
    }

    impl Read for Chunked {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            let Some(slot) = self.chunks.get(self.at) else {
                return Ok(0);
            };
            self.at += 1;
            match slot {
                None => Err(io::Error::new(ErrorKind::WouldBlock, "timeout")),
                Some(bytes) => {
                    out[..bytes.len()].copy_from_slice(bytes);
                    Ok(bytes.len())
                }
            }
        }
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, &[0xffu8; 300]).unwrap();
        let mut r = FrameReader::new(&wire[..]);
        assert_eq!(r.next_frame().unwrap(), b"hello");
        assert_eq!(r.next_frame().unwrap(), b"");
        assert_eq!(r.next_frame().unwrap(), &[0xffu8; 300][..]);
    }

    #[test]
    fn frame_into_batches_equal_write_frame_stream() {
        let mut a = Vec::new();
        write_frame(&mut a, b"one").unwrap();
        write_frame(&mut a, b"two-two").unwrap();
        let mut b = Vec::new();
        frame_into(&mut b, b"one").unwrap();
        frame_into(&mut b, b"two-two").unwrap();
        assert_eq!(a, b, "batched framing is byte-identical");
    }

    #[test]
    fn partial_delivery_and_timeouts_keep_sync() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef").unwrap();
        write_frame(&mut wire, b"XY").unwrap();
        // Split the stream at awkward points: mid-header, mid-payload, and
        // interleave timeouts.
        let chunks = vec![
            Some(wire[..2].to_vec()),
            None,
            Some(wire[2..5].to_vec()),
            None,
            Some(wire[5..11].to_vec()),
            Some(wire[11..].to_vec()),
        ];
        let mut r = FrameReader::new(Chunked { chunks, at: 0 });
        let mut frames = Vec::new();
        loop {
            match r.poll_frame() {
                Ok(Some(f)) => frames.push(f.to_vec()),
                Ok(None) => continue,
                Err(e) if e.kind() == ErrorKind::UnexpectedEof => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(frames, vec![b"abcdef".to_vec(), b"XY".to_vec()]);
    }

    #[test]
    fn buffered_frame_drains_without_reading() {
        // Three frames delivered by ONE read; buffered_frame must yield the
        // remaining two without another syscall.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"a").unwrap();
        write_frame(&mut wire, b"bb").unwrap();
        write_frame(&mut wire, b"ccc").unwrap();
        let chunks = vec![Some(wire.clone())];
        let mut r = FrameReader::new(Chunked { chunks, at: 0 });
        assert_eq!(r.next_frame().unwrap(), b"a");
        assert_eq!(r.buffered_frame().unwrap().unwrap(), b"bb");
        assert_eq!(r.buffered_frame().unwrap().unwrap(), b"ccc");
        assert!(r.buffered_frame().unwrap().is_none(), "no fourth frame");
    }

    #[test]
    fn internal_buffer_is_reused_across_frames() {
        // Feed many frames through one reader; the buffer must stay bounded
        // by one read chunk + one frame, not grow with frame count.
        let mut wire = Vec::new();
        for i in 0..1000u32 {
            write_frame(&mut wire, &i.to_be_bytes()).unwrap();
        }
        let mut r = FrameReader::new(&wire[..]);
        for i in 0..1000u32 {
            assert_eq!(r.next_frame().unwrap(), &i.to_be_bytes()[..]);
        }
        assert!(
            r.buf.capacity() <= 2 * READ_CHUNK + 8,
            "buffer grew unbounded: {}",
            r.buf.capacity()
        );
    }

    #[test]
    fn oversized_header_is_rejected() {
        let mut wire = (u32::MAX).to_be_bytes().to_vec();
        wire.extend_from_slice(b"junk");
        let mut r = FrameReader::new(&wire[..]);
        assert_eq!(
            r.next_frame().unwrap_err().kind(),
            ErrorKind::InvalidData
        );
    }

    #[test]
    fn oversized_payload_write_is_rejected() {
        let huge = vec![0u8; MAX_FRAME + 1];
        let mut out = Vec::new();
        assert_eq!(
            write_frame(&mut out, &huge).unwrap_err().kind(),
            ErrorKind::InvalidInput
        );
        assert_eq!(
            frame_into(&mut out, &huge).unwrap_err().kind(),
            ErrorKind::InvalidInput
        );
        assert!(out.is_empty(), "nothing written on rejection");
    }

    #[test]
    fn eof_between_frames_is_unexpected_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"only").unwrap();
        let mut r = FrameReader::new(&wire[..]);
        assert_eq!(r.next_frame().unwrap(), b"only");
        assert_eq!(
            r.next_frame().unwrap_err().kind(),
            ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn bin_primitives_roundtrip() {
        let mut w = BinWriter::new();
        w.u8(0xab);
        w.u16(0x1234);
        w.u32(0xdead_beef);
        w.u64(0x0123_4567_89ab_cdef);
        w.u128(u128::MAX - 7);
        w.bytes(b"payload");
        w.str16("hdr.ipv4.dst_addr");
        let enc = w.finish();
        let mut r = BinReader::new(&enc);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.u128().unwrap(), u128::MAX - 7);
        assert_eq!(r.bytes().unwrap(), b"payload");
        assert_eq!(r.str16().unwrap(), "hdr.ipv4.dst_addr");
        assert!(r.is_done());
    }

    #[test]
    fn bin_reader_truncation_errors_cleanly() {
        let mut w = BinWriter::new();
        w.bytes(b"0123456789");
        let enc = w.finish();
        for cut in 0..enc.len() {
            let mut r = BinReader::new(&enc[..cut]);
            assert!(r.bytes().is_err(), "cut at {cut} must error");
        }
    }
}
