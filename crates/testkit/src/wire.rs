//! Length-framed message transport over any `Read`/`Write` pair.
//!
//! The wire driver (`meissa-netdriver`) speaks JSON messages over TCP; this
//! module supplies the framing: a 4-byte big-endian length prefix followed
//! by that many payload bytes (UTF-8 JSON text by convention, though the
//! framing itself is payload-agnostic). The reader buffers partial frames
//! internally, so a socket read timeout mid-frame never loses stream sync —
//! the next poll resumes where the last one stopped.

use std::io::{self, ErrorKind, Read, Write};

/// Frames larger than this are rejected as corrupt — a desynchronized
/// stream's "length" is usually garbage, and this bounds the allocation.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Incremental frame reader. Keeps partially-read frames across calls so a
/// read timeout between (or inside) frames is recoverable.
pub struct FrameReader<R> {
    inner: R,
    /// Bytes received but not yet assembled into a frame.
    buf: Vec<u8>,
    /// Payload length of the frame being assembled, once its header is in.
    want: Option<usize>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        FrameReader {
            inner,
            buf: Vec::new(),
            want: None,
        }
    }

    /// The wrapped stream (e.g. to adjust socket timeouts).
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Tries to complete a frame from buffered bytes alone.
    fn take_buffered(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.want.is_none() && self.buf.len() >= 4 {
            let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]])
                as usize;
            if len > MAX_FRAME {
                return Err(io::Error::new(
                    ErrorKind::InvalidData,
                    format!("frame header claims {len} bytes; stream desynchronized"),
                ));
            }
            self.buf.drain(..4);
            self.want = Some(len);
        }
        if let Some(len) = self.want {
            if self.buf.len() >= len {
                let rest = self.buf.split_off(len);
                let frame = std::mem::replace(&mut self.buf, rest);
                self.want = None;
                return Ok(Some(frame));
            }
        }
        Ok(None)
    }

    /// Reads until one frame is complete, a read would block/time out
    /// (`Ok(None)`), or the stream errors. EOF mid-stream surfaces as
    /// `UnexpectedEof`.
    pub fn poll_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        loop {
            if let Some(frame) = self.take_buffered()? {
                return Ok(Some(frame));
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "stream closed mid-conversation",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Blocks until a frame arrives (retrying over read timeouts).
    pub fn next_frame(&mut self) -> io::Result<Vec<u8>> {
        loop {
            if let Some(frame) = self.poll_frame()? {
                return Ok(frame);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that delivers its script one slice per `read` call, with
    /// `WouldBlock` errors interleaved — a socket with a short timeout.
    struct Chunked {
        chunks: Vec<Option<Vec<u8>>>,
        at: usize,
    }

    impl Read for Chunked {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            let Some(slot) = self.chunks.get(self.at) else {
                return Ok(0);
            };
            self.at += 1;
            match slot {
                None => Err(io::Error::new(ErrorKind::WouldBlock, "timeout")),
                Some(bytes) => {
                    out[..bytes.len()].copy_from_slice(bytes);
                    Ok(bytes.len())
                }
            }
        }
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, &[0xffu8; 300]).unwrap();
        let mut r = FrameReader::new(&wire[..]);
        assert_eq!(r.next_frame().unwrap(), b"hello");
        assert_eq!(r.next_frame().unwrap(), b"");
        assert_eq!(r.next_frame().unwrap(), vec![0xffu8; 300]);
    }

    #[test]
    fn partial_delivery_and_timeouts_keep_sync() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef").unwrap();
        write_frame(&mut wire, b"XY").unwrap();
        // Split the stream at awkward points: mid-header, mid-payload, and
        // interleave timeouts.
        let chunks = vec![
            Some(wire[..2].to_vec()),
            None,
            Some(wire[2..5].to_vec()),
            None,
            Some(wire[5..11].to_vec()),
            Some(wire[11..].to_vec()),
        ];
        let mut r = FrameReader::new(Chunked { chunks, at: 0 });
        let mut frames = Vec::new();
        loop {
            match r.poll_frame() {
                Ok(Some(f)) => frames.push(f),
                Ok(None) => continue,
                Err(e) if e.kind() == ErrorKind::UnexpectedEof => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(frames, vec![b"abcdef".to_vec(), b"XY".to_vec()]);
    }

    #[test]
    fn oversized_header_is_rejected() {
        let mut wire = (u32::MAX).to_be_bytes().to_vec();
        wire.extend_from_slice(b"junk");
        let mut r = FrameReader::new(&wire[..]);
        assert_eq!(
            r.next_frame().unwrap_err().kind(),
            ErrorKind::InvalidData
        );
    }

    #[test]
    fn eof_between_frames_is_unexpected_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"only").unwrap();
        let mut r = FrameReader::new(&wire[..]);
        assert_eq!(r.next_frame().unwrap(), b"only");
        assert_eq!(
            r.next_frame().unwrap_err().kind(),
            ErrorKind::UnexpectedEof
        );
    }
}
