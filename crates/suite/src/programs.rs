//! The open-source program corpus (Table 1, first four rows), written in
//! P4lite. Each program embeds LPI intents so the full test-driver loop is
//! exercised, and declares tables whose keys include fields *written by
//! earlier tables* — the pattern that makes naive path enumeration explode
//! (Fig. 5b / Fig. 7) and that code summary collapses.

/// Router: a simple router based on switch.p4 that only contains layer-3
/// routing (Table 1). Two chained tables: LPM routing then a dmac rewrite
/// keyed on the egress port the first table assigned.
pub const ROUTER: &str = r#"
# Router — L3 routing only, derived from switch.p4.
header ethernet { dst_addr: 48; src_addr: 48; ether_type: 16; }
header ipv4 {
  version: 4; ihl: 4; diffserv: 8; total_len: 16;
  ttl: 8; protocol: 8; checksum: 16;
  src_addr: 32; dst_addr: 32;
}
metadata meta { egress_port: 9; drop: 1; }

parser rtr_parser {
  state start {
    extract(ethernet);
    select (hdr.ethernet.ether_type) {
      0x0800 => parse_ipv4;
      default => accept;
    }
  }
  state parse_ipv4 { extract(ipv4); accept; }
}

action set_port(port: 9) {
  meta.egress_port = port;
  hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
}
action drop_() { meta.drop = 1; }
action set_dmac(mac: 48) { hdr.ethernet.dst_addr = mac; }
action noop() { }

table ipv4_lpm {
  key = { hdr.ipv4.dst_addr: lpm; }
  actions = { set_port; drop_; }
  default_action = drop_();
  size = 1024;
}

table dmac_rewrite {
  key = { meta.egress_port: exact; }
  actions = { set_dmac; noop; }
  default_action = noop();
  size = 512;
}

control router_ingress {
  if (hdr.ipv4.isValid()) {
    apply(ipv4_lpm);
    if (meta.drop == 0) {
      apply(dmac_rewrite);
    }
  } else {
    call drop_();
  }
}

pipeline ingress { parser = rtr_parser; control = router_ingress; }
deparser { emit(ethernet); emit(ipv4); }

intent ipv4_is_routed_or_dropped {
  given hdr.ethernet.ether_type == 0x0800;
  expect meta.drop == 1 || meta.egress_port != 0;
}
intent non_ip_is_dropped {
  given hdr.ethernet.ether_type != 0x0800;
  expect meta.drop == 1;
}
intent ttl_decremented_when_forwarded {
  given hdr.ethernet.ether_type == 0x0800 && hdr.ipv4.ttl == 64;
  expect meta.drop == 1 || hdr.ipv4.ttl == 63;
}
"#;

/// mTag (mTag-edge): the edge switch of the mTag architecture inserts a
/// source-routing tag toward the core and strips it toward hosts (Table 1).
pub const MTAG: &str = r#"
# mTag-edge — inserts and removes mTags at edge switches.
header ethernet { dst_addr: 48; src_addr: 48; ether_type: 16; }
header mtag { up1: 8; up2: 8; down1: 8; down2: 8; ether_type: 16; }
header ipv4 {
  version: 4; ihl: 4; diffserv: 8; total_len: 16;
  ttl: 8; protocol: 8; checksum: 16;
  src_addr: 32; dst_addr: 32;
}
metadata meta { egress_port: 9; drop: 1; tagged: 1; }

parser mtag_parser {
  state start {
    extract(ethernet);
    select (hdr.ethernet.ether_type) {
      0xaaaa => parse_mtag;
      0x0800 => parse_ipv4;
      default => accept;
    }
  }
  state parse_mtag {
    extract(mtag);
    select (hdr.mtag.ether_type) {
      0x0800 => parse_ipv4;
      default => accept;
    }
  }
  state parse_ipv4 { extract(ipv4); accept; }
}

action add_mtag(up1: 8, up2: 8, down1: 8, down2: 8) {
  hdr.mtag.setValid();
  hdr.mtag.up1 = up1;
  hdr.mtag.up2 = up2;
  hdr.mtag.down1 = down1;
  hdr.mtag.down2 = down2;
  hdr.mtag.ether_type = hdr.ethernet.ether_type;
  hdr.ethernet.ether_type = 0xaaaa;
  meta.tagged = 1;
  meta.egress_port = 1;
}
action strip_mtag() {
  hdr.ethernet.ether_type = hdr.mtag.ether_type;
  hdr.mtag.setInvalid();
  meta.tagged = 0;
}
action local_deliver(port: 9) { meta.egress_port = port; }
action drop_() { meta.drop = 1; }
action noop() { }

table mtag_add {
  key = { hdr.ipv4.dst_addr: lpm; }
  actions = { add_mtag; drop_; }
  default_action = drop_();
  size = 256;
}

table host_deliver {
  key = { hdr.ipv4.dst_addr: exact; }
  actions = { local_deliver; drop_; }
  default_action = drop_();
  size = 256;
}

control mtag_edge {
  if (hdr.ipv4.isValid()) {
    if (hdr.mtag.isValid()) {
      call strip_mtag();
      apply(host_deliver);
    } else {
      apply(mtag_add);
    }
  } else {
    call drop_();
  }
}

pipeline edge { parser = mtag_parser; control = mtag_edge; }
deparser { emit(ethernet); emit(mtag); emit(ipv4); }

intent upstream_gets_tagged {
  given hdr.ethernet.ether_type == 0x0800;
  expect meta.drop == 1 || hdr.mtag.$valid == 1;
}
intent downstream_gets_stripped {
  given hdr.ethernet.ether_type == 0xaaaa && hdr.mtag.ether_type == 0x0800;
  expect meta.drop == 1 || hdr.mtag.$valid == 0;
}
"#;

/// ACL: filtering on `dst_addr`, `src_addr` and ECN, layered on Router
/// (Table 1).
pub const ACL: &str = r#"
# ACL — dst/src/ECN filtering in front of the Router pipeline.
header ethernet { dst_addr: 48; src_addr: 48; ether_type: 16; }
header ipv4 {
  version: 4; ihl: 4; dscp: 6; ecn: 2; total_len: 16;
  ttl: 8; protocol: 8; checksum: 16;
  src_addr: 32; dst_addr: 32;
}
metadata meta { egress_port: 9; drop: 1; acl_hit: 1; }

parser acl_parser {
  state start {
    extract(ethernet);
    select (hdr.ethernet.ether_type) {
      0x0800 => parse_ipv4;
      default => accept;
    }
  }
  state parse_ipv4 { extract(ipv4); accept; }
}

action deny() { meta.drop = 1; meta.acl_hit = 1; }
action permit() { meta.acl_hit = 1; }
action set_port(port: 9) {
  meta.egress_port = port;
  hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
}
action drop_() { meta.drop = 1; }
action noop() { }

table acl_filter {
  key = {
    hdr.ipv4.src_addr: ternary;
    hdr.ipv4.dst_addr: ternary;
    hdr.ipv4.ecn: range;
  }
  actions = { deny; permit; }
  default_action = permit();
  size = 512;
}

table ipv4_lpm {
  key = { hdr.ipv4.dst_addr: lpm; }
  actions = { set_port; drop_; }
  default_action = drop_();
  size = 1024;
}

control acl_ingress {
  if (hdr.ipv4.isValid()) {
    apply(acl_filter);
    if (meta.drop == 0) {
      apply(ipv4_lpm);
    }
  } else {
    call drop_();
  }
}

pipeline ingress { parser = acl_parser; control = acl_ingress; }
deparser { emit(ethernet); emit(ipv4); }

intent filtered_or_routed {
  given hdr.ethernet.ether_type == 0x0800;
  expect meta.drop == 1 || meta.egress_port != 0;
}
intent acl_always_consulted {
  given hdr.ethernet.ether_type == 0x0800;
  expect meta.acl_hit == 1;
}
"#;

/// switch.p4 stand-in: L2 switching, L3 routing with hash-based ECMP,
/// VXLAN tunnel termination, ACL, and MPLS forwarding in one pipeline
/// (Table 1's "multifunctional data plane program").
pub const SWITCH_LITE: &str = r#"
# switch.p4 (lite) — L2, L3+ECMP, VXLAN, ACL, MPLS.
header ethernet { dst_addr: 48; src_addr: 48; ether_type: 16; }
header vlan { pcp: 3; cfi: 1; vid: 12; ether_type: 16; }
header mpls { label: 20; exp: 3; bos: 1; mpls_ttl: 8; }
header ipv4 {
  version: 4; ihl: 4; diffserv: 8; total_len: 16;
  ttl: 8; protocol: 8; checksum: 16;
  src_addr: 32; dst_addr: 32;
}
header udp { src_port: 16; dst_port: 16; length: 16; checksum: 16; }
header tcp { src_port: 16; dst_port: 16; seq_no: 32; ack_no: 32; }
header vxlan { flags: 8; reserved: 24; vni: 24; reserved2: 8; }
metadata meta {
  egress_port: 9; drop: 1;
  l2_hit: 1; nexthop: 16; ecmp_sel: 2; tunnel_terminated: 1;
}

parser sw_parser {
  state start {
    extract(ethernet);
    select (hdr.ethernet.ether_type) {
      0x8100 => parse_vlan;
      0x8847 => parse_mpls;
      0x0800 => parse_ipv4;
      default => accept;
    }
  }
  state parse_vlan {
    extract(vlan);
    select (hdr.vlan.ether_type) {
      0x0800 => parse_ipv4;
      default => accept;
    }
  }
  state parse_mpls { extract(mpls); accept; }
  state parse_ipv4 {
    extract(ipv4);
    select (hdr.ipv4.protocol) {
      17 => parse_udp;
      6 => parse_tcp;
      default => accept;
    }
  }
  state parse_udp {
    extract(udp);
    select (hdr.udp.dst_port) {
      4789 => parse_vxlan;
      default => accept;
    }
  }
  state parse_tcp { extract(tcp); accept; }
  state parse_vxlan { extract(vxlan); accept; }
}

action drop_() { meta.drop = 1; }
action noop() { }
action l2_forward(port: 9) { meta.egress_port = port; meta.l2_hit = 1; }
action set_nexthop(nh: 16) {
  meta.nexthop = nh;
  hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
}
action ecmp_hash() {
  meta.ecmp_sel = hash(crc16, 2, hdr.ipv4.src_addr, hdr.ipv4.dst_addr, hdr.ipv4.protocol);
}
action set_port(port: 9) { meta.egress_port = port; }
action mpls_pop(port: 9) {
  hdr.mpls.setInvalid();
  hdr.ethernet.ether_type = 0x0800;
  meta.egress_port = port;
}
action vxlan_terminate() {
  hdr.vxlan.setInvalid();
  hdr.udp.setInvalid();
  meta.tunnel_terminated = 1;
}

table smac_check {
  key = { hdr.ethernet.src_addr: exact; }
  actions = { noop; drop_; }
  default_action = noop();
  size = 1024;
}

table dmac_lookup {
  key = { hdr.ethernet.dst_addr: exact; }
  actions = { l2_forward; noop; }
  default_action = noop();
  size = 1024;
}

table ipv4_route {
  key = { hdr.ipv4.dst_addr: lpm; }
  actions = { set_nexthop; drop_; }
  default_action = drop_();
  size = 4096;
}

table ecmp_select {
  key = { meta.nexthop: exact; meta.ecmp_sel: exact; }
  actions = { set_port; drop_; }
  default_action = drop_();
  size = 256;
}

table mpls_fib {
  key = { hdr.mpls.label: exact; }
  actions = { mpls_pop; drop_; }
  default_action = drop_();
  size = 512;
}

table acl_v4 {
  key = { hdr.ipv4.src_addr: ternary; hdr.ipv4.dst_addr: ternary; }
  actions = { drop_; noop; }
  default_action = noop();
  size = 512;
}

control sw_ingress {
  apply(smac_check);
  if (meta.drop == 0) {
    if (hdr.mpls.isValid()) {
      apply(mpls_fib);
    } else {
      if (hdr.vxlan.isValid()) {
        call vxlan_terminate();
      }
      apply(dmac_lookup);
      if (meta.l2_hit == 0 && hdr.ipv4.isValid()) {
        apply(ipv4_route);
        if (meta.drop == 0) {
          call ecmp_hash();
          apply(ecmp_select);
        }
      }
      apply(acl_v4);
    }
  }
}

pipeline sw { parser = sw_parser; control = sw_ingress; }
deparser {
  emit(ethernet); emit(vlan); emit(mpls);
  emit(ipv4); emit(udp); emit(tcp); emit(vxlan);
}

intent no_silent_blackhole {
  given hdr.ethernet.ether_type == 0x0800;
  expect meta.drop == 1 || meta.egress_port != 0 || meta.l2_hit == 1;
}
intent mpls_terminates_or_drops {
  given hdr.ethernet.ether_type == 0x8847;
  expect meta.drop == 1 || hdr.mpls.$valid == 0;
}
intent tunnel_termination_strips_vxlan {
  given true;
  expect meta.tunnel_terminated == 0 || hdr.vxlan.$valid == 0;
}
"#;

/// Connection-tracking firewall: an outbound packet marks its flow in a
/// register; an inbound packet is admitted only if the flow was marked.
/// The canonical stateful workload — its interesting behaviour (inbound
/// admission) is reachable only via a k ≥ 2 packet sequence.
pub const STATEFUL_FIREWALL: &str = r#"
header conn { src_host: 16; dst_host: 16; dir: 8; }
metadata meta { egress_port: 9; drop: 1; }
register seen[1]: 1;

parser main {
  state start { extract(conn); accept; }
}

action mark_outbound() { seen[0] = 1; meta.egress_port = 1; }
action allow_inbound() { meta.egress_port = 2; }
action drop_() { meta.drop = 1; }

control firewall {
  if (hdr.conn.dir == 0) {
    call mark_outbound();
  } else {
    if (seen[0] == 1) { call allow_inbound(); } else { call drop_(); }
  }
}

pipeline ingress0 { parser = main; control = firewall; }
deparser { emit(conn); }
"#;

/// Token-bucket rate limiter: the first packet of a window spends the
/// register-held token and is admitted; later packets are policed until a
/// refill. Policing is reachable only via a k ≥ 2 packet sequence.
pub const TOKEN_BUCKET: &str = r#"
header pkt { flow: 8; len: 8; }
metadata meta { egress_port: 9; drop: 1; scratch: 8; }
register used[1]: 8;

parser main {
  state start { extract(pkt); accept; }
}

action admit() { used[0] = used[0] + 1; meta.egress_port = 1; }
action police() { meta.drop = 1; }

control limiter {
  if (used[0] == 0) { call admit(); } else { call police(); }
}

pipeline ingress0 { parser = main; control = limiter; }
deparser { emit(pkt); }
"#;

#[cfg(test)]
mod tests {
    use meissa_lang::parse_program;

    #[test]
    fn all_sources_parse() {
        for (name, src) in [
            ("router", super::ROUTER),
            ("mtag", super::MTAG),
            ("acl", super::ACL),
            ("switch_lite", super::SWITCH_LITE),
        ] {
            let p = parse_program(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!p.headers.is_empty(), "{name}");
            assert!(!p.intents.is_empty(), "{name}");
        }
    }

    #[test]
    fn loc_ordering_matches_paper() {
        // Table 1: mTag < Router < ACL < switch.p4 (ours keeps the order
        // even at reduced absolute scale).
        let loc = |s: &str| parse_program(s).unwrap().loc;
        let (r, m, a, s) = (
            loc(super::ROUTER),
            loc(super::MTAG),
            loc(super::ACL),
            loc(super::SWITCH_LITE),
        );
        assert!(s > a && s > r && s > m, "switch.p4 is the largest");
        assert!(a > r, "ACL extends Router");
    }
}
