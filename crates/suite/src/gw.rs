//! Production-gateway program generators (Table 1, gw-1..gw-4) and the
//! set-1..set-4 rule-set scales.
//!
//! The paper's gateways are proprietary; these generators reproduce their
//! *shape* (DESIGN.md substitution table):
//!
//! * **gw-1** — 1 pipe: elastic-IP lookup + VXLAN encapsulation.
//! * **gw-2** — 2 pipes: ingress (ACL + EIP) → egress (classification +
//!   encap + underlay).
//! * **gw-3** — 4 pipes, one switch, the Fig. 1 traversal
//!   `ingress0 → egress1 → ingress1 → egress0` (gateway pipes 0, switch
//!   pipes 1).
//! * **gw-4** — 8 pipes across two switches; `meta.cross` steers flow A
//!   (stays in sw0) vs flow B (continues into sw1), like Fig. 1's flows.
//!   The fifth pipeline of the flow-B traversal (`sw1_ig0`) carries twice
//!   the classification rules — the paper's note that most of
//!   gw-4/set-4's complexity sits inside `ppl5`.
//!
//! Two structural properties drive the Figs. 9–12 shapes:
//!
//! 1. **Shared diagonal**: the EIP table assigns the VNI that every
//!    downstream table keys on, so end-to-end valid paths stay `O(eips)`
//!    while possible paths grow multiplicatively with pipes.
//! 2. **Per-pipe fresh-field classifiers** (`port_class` →
//!    `pclass_vni_check`): a two-table Fig. 7 diagonal over a field no
//!    earlier pipeline constrains. A whole-program DFS must re-explore this
//!    `O(m²)` structure for *every* valid prefix reaching the pipe; code
//!    summary explores it once — which is exactly the horizontal-composition
//!    observation of §3.3 and what Figs. 11/12 measure.
//!
//! set-(k+1) doubles set-k's elastic IPs, mirroring §5.1.

use crate::Workload;
use std::fmt::Write;

/// Rule-set scale (the paper's set-1..set-4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GwScale {
    /// Number of elastic IPs; every per-pipe table carries `O(eips)` rules.
    pub eips: usize,
}

/// The paper's scale ladder: set-k has `4 · 2^(k-1)` elastic IPs
/// (set-2 doubles set-1, set-3 doubles set-2, set-4 doubles set-3).
pub fn rule_set(level: u8) -> GwScale {
    assert!((1..=4).contains(&level), "rule sets are set-1..set-4");
    GwScale {
        eips: 4usize << (level - 1),
    }
}

/// Builds gw-`level` (1..=4) with the given rule scale.
pub fn gw(level: u8, scale: GwScale) -> Workload {
    assert!((1..=4).contains(&level), "gateways are gw-1..gw-4");
    let src = gw_source(level);
    let rules = gw_rules(level, scale);
    crate::compile_pair(&format!("gw-{level}"), &src, &rules)
}

/// gw-`level` with its evaluation-default rule set (gw-k pairs with set-k
/// in Fig. 9: "gw-1, gw-2 and gw-3 use parts of table rule sets … gw-4
/// fully uses the entire table rule sets").
pub fn gw_default(level: u8) -> Workload {
    gw(level, rule_set(level))
}

const COMMON_DECLS: &str = r#"
header ethernet { dst_addr: 48; src_addr: 48; ether_type: 16; }
header ipv4 {
  version: 4; ihl: 4; diffserv: 8; total_len: 16;
  ttl: 8; protocol: 8; checksum: 16;
  src_addr: 32; dst_addr: 32;
}
header tcp { src_port: 16; dst_port: 16; seq_no: 32; checksum: 16; }
header udp { src_port: 16; dst_port: 16; length: 16; checksum: 16; }
header vxlan { flags: 8; reserved: 24; vni: 24; reserved2: 8; }
metadata meta {
  egress_port: 9; drop: 1; vni: 24; do_encap: 1; cross: 1;
  nh: 16; stats_class: 8;
}

parser gw_parser {
  state start {
    extract(ethernet);
    select (hdr.ethernet.ether_type) {
      0x0800 => parse_ipv4;
      default => accept;
    }
  }
  state parse_ipv4 {
    extract(ipv4);
    select (hdr.ipv4.protocol) {
      6 => parse_tcp;
      default => accept;
    }
  }
  state parse_tcp { extract(tcp); accept; }
}

action drop_() { meta.drop = 1; }
action noop() { }
action eip_hit(vni: 24, port: 9, cross: 1) {
  meta.vni = vni;
  meta.egress_port = port;
  meta.do_encap = 1;
  meta.cross = cross;
}
action acl_deny() { meta.drop = 1; }
action encap_to(underlay: 32) {
  hdr.vxlan.setValid();
  hdr.vxlan.flags = 0x08;
  hdr.vxlan.vni = meta.vni;
  hdr.ipv4.dst_addr = underlay;
  hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
  hdr.ipv4.checksum = hash(csum16, 16, hdr.ipv4.src_addr, hdr.ipv4.dst_addr, hdr.ipv4.ttl);
}
action set_stats(class: 8) { meta.stats_class = class; }
action set_nh(nh: 16) { meta.nh = nh; }
action nh_rewrite_a(mac: 48, port: 9) {
  hdr.ethernet.dst_addr = mac;
  meta.egress_port = port;
}
"#;

const EIP_TABLE: &str = r#"
table eip_lookup{SUF} {
  key = { hdr.ipv4.dst_addr: exact; }
  actions = { eip_hit; drop_; }
  default_action = drop_();
  size = 65536;
}
"#;

const ACL_TABLE: &str = r#"
table acl_filter{SUF} {
  key = { hdr.ipv4.src_addr: ternary; }
  actions = { acl_deny; noop; }
  default_action = noop();
  size = 4096;
}
"#;

const ENCAP_TABLE: &str = r#"
table vni_underlay{SUF} {
  key = { meta.vni: exact; }
  actions = { encap_to; drop_; }
  default_action = drop_();
  size = 65536;
}
"#;

const STATS_TABLE: &str = r#"
table stats_egress{SUF} {
  key = { meta.egress_port: exact; }
  actions = { set_stats; noop; }
  default_action = noop();
  size = 512;
}
"#;

const L3_TABLE: &str = r#"
table underlay_route{SUF} {
  key = { hdr.ipv4.dst_addr: lpm; }
  actions = { set_nh; drop_; }
  default_action = drop_();
  size = 16384;
}
"#;

const NH_TABLE: &str = r#"
table nh_rewrite{SUF} {
  key = { meta.vni: exact; }
  actions = { nh_rewrite_a; drop_; }
  default_action = drop_();
  size = 16384;
}
"#;

/// The fresh-field classifier chain: `port_class` fans out on the (so far
/// unconstrained) TCP source port; three metadata-keyed class maps chain
/// the classification (each step fully determined by the previous — the
/// redundant interior structure whose re-verification code summary
/// eliminates); `class_vni_gate` closes the diagonal against the shared
/// VNI chain, dropping off-diagonal combinations.
const PCLASS_TABLES: &str = r#"
metadata mcls{SUF} { pclass: 16; cm1: 16; cm2: 16; cm3: 16; prio: 4; }
action set_pclass{SUF}(c: 16) { mcls{SUF}.pclass = c; }
action set_cm1{SUF}(c: 16) { mcls{SUF}.cm1 = c; }
action set_cm2{SUF}(c: 16) { mcls{SUF}.cm2 = c; }
action set_cm3{SUF}(c: 16) { mcls{SUF}.cm3 = c; }
action set_prio{SUF}(p: 4) { mcls{SUF}.prio = p; }
table port_class{SUF} {
  key = { hdr.tcp.src_port: exact; }
  actions = { set_pclass{SUF}; noop; }
  default_action = noop();
  size = 4096;
}
table class_map1{SUF} {
  key = { mcls{SUF}.pclass: exact; }
  actions = { set_cm1{SUF}; noop; }
  default_action = noop();
  size = 4096;
}
table class_map2{SUF} {
  key = { mcls{SUF}.cm1: exact; }
  actions = { set_cm2{SUF}; noop; }
  default_action = noop();
  size = 4096;
}
table class_map3{SUF} {
  key = { mcls{SUF}.cm2: exact; }
  actions = { set_cm3{SUF}; noop; }
  default_action = noop();
  size = 4096;
}
table class_gate{SUF} {
  key = { mcls{SUF}.cm3: exact; meta.egress_port: exact; }
  actions = { set_prio{SUF}; drop_; }
  default_action = drop_();
  size = 4096;
}
"#;

/// The classifier application snippet, guarded so only TCP traffic pays it.
fn pclass_apply(suffix: &str) -> String {
    format!(
        r#"    if (hdr.tcp.isValid()) {{
      apply(port_class{suffix});
      apply(class_map1{suffix});
      apply(class_map2{suffix});
      apply(class_map3{suffix});
      apply(class_gate{suffix});
    }}
"#
    )
}

/// A telemetry classifier: DSCP-keyed statistics class that nothing
/// downstream reads. Production ingress pipes carry many such tables; they
/// multiply the upstream path variants while projecting onto *no* later
/// pipeline's reads — the workload property §3.3's observation describes
/// and the §7 grouping exploits.
const TELEMETRY_TABLE: &str = r#"
metadata mtel{SUF} { tclass: 8; }
action set_tclass{SUF}(c: 8) { mtel{SUF}.tclass = c; }
table dscp_stats{SUF} {
  key = { hdr.ipv4.diffserv: exact; }
  actions = { set_tclass{SUF}; noop; }
  default_action = noop();
  size = 64;
}
"#;

fn table_block(template: &str, suffix: &str) -> String {
    template.replace("{SUF}", suffix)
}

/// Emits the P4lite source for gw-`level`.
pub fn gw_source(level: u8) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# gw-{level}: generated production-gateway workload.");
    s.push_str(COMMON_DECLS);

    match level {
        1 => {
            s.push_str(&table_block(EIP_TABLE, ""));
            s.push_str(&table_block(ENCAP_TABLE, ""));
            s.push_str(
                r#"
control gw1_ingress {
  if (hdr.ipv4.isValid()) {
    apply(eip_lookup);
    if (meta.drop == 0) {
      apply(vni_underlay);
    }
  } else {
    call drop_();
  }
}
pipeline ig0 { parser = gw_parser; control = gw1_ingress; }
"#,
            );
        }
        2 => {
            s.push_str(&table_block(EIP_TABLE, ""));
            s.push_str(&table_block(ACL_TABLE, ""));
            s.push_str(&table_block(ENCAP_TABLE, ""));
            s.push_str(&table_block(NH_TABLE, ""));
            s.push_str(&table_block(PCLASS_TABLES, ""));
            s.push_str(&table_block(TELEMETRY_TABLE, "_z"));
            let mut ctl = String::from(
                r#"
control gw2_ingress {
  if (hdr.ipv4.isValid()) {
    apply(acl_filter);
    if (meta.drop == 0) {
      apply(eip_lookup);
      apply(dscp_stats_z);
    }
  } else {
    call drop_();
  }
}
control gw2_egress {
  if (meta.drop == 0) {
"#,
            );
            ctl.push_str(&pclass_apply(""));
            ctl.push_str(
                r#"    if (meta.drop == 0) {
      apply(vni_underlay);
      apply(nh_rewrite);
    }
  }
}
pipeline ig0 { parser = gw_parser; control = gw2_ingress; }
pipeline eg0 { control = gw2_egress; }
topology {
  start -> ig0;
  ig0 -> eg0;
  eg0 -> end;
}
"#,
            );
            s.push_str(&ctl);
        }
        3 => {
            // Fig. 1 traversal: ig0(gw) → eg1(sw) → ig1(sw) → eg0(gw).
            s.push_str(&table_block(EIP_TABLE, ""));
            s.push_str(&table_block(ACL_TABLE, ""));
            s.push_str(&table_block(STATS_TABLE, ""));
            s.push_str(&table_block(L3_TABLE, ""));
            s.push_str(&table_block(ENCAP_TABLE, ""));
            s.push_str(&table_block(NH_TABLE, ""));
            s.push_str(&table_block(PCLASS_TABLES, "_a"));
            s.push_str(&table_block(PCLASS_TABLES, "_b"));
            s.push_str(&table_block(TELEMETRY_TABLE, "_z"));
            let mut ctl = String::from(
                r#"
control gw3_ig0 {
  if (hdr.ipv4.isValid()) {
    apply(acl_filter);
    if (meta.drop == 0) {
      apply(eip_lookup);
      apply(dscp_stats_z);
    }
  } else {
    call drop_();
  }
}
control gw3_eg1 {
  if (meta.drop == 0) {
"#,
            );
            ctl.push_str(&pclass_apply("_a"));
            ctl.push_str(
                r#"    apply(stats_egress);
  }
}
control gw3_ig1 {
  if (meta.drop == 0) {
"#,
            );
            ctl.push_str(&pclass_apply("_b"));
            ctl.push_str(
                r#"    apply(underlay_route);
  }
}
control gw3_eg0 {
  if (meta.drop == 0) {
    apply(vni_underlay);
    apply(nh_rewrite);
  }
}
pipeline ig0 { parser = gw_parser; control = gw3_ig0; }
pipeline eg1 { control = gw3_eg1; }
pipeline ig1 { control = gw3_ig1; }
pipeline eg0 { control = gw3_eg0; }
topology {
  start -> ig0;
  ig0 -> eg1;
  eg1 -> ig1;
  ig1 -> eg0;
  eg0 -> end;
}
"#,
            );
            s.push_str(&ctl);
        }
        4 => {
            for sw in ["sw0", "sw1"] {
                s.push_str(&table_block(EIP_TABLE, &format!("_{sw}")));
                s.push_str(&table_block(ACL_TABLE, &format!("_{sw}")));
                s.push_str(&table_block(STATS_TABLE, &format!("_{sw}")));
                s.push_str(&table_block(L3_TABLE, &format!("_{sw}")));
                s.push_str(&table_block(ENCAP_TABLE, &format!("_{sw}")));
                s.push_str(&table_block(NH_TABLE, &format!("_{sw}")));
            }
            // Fresh-field classifiers in the switch-function pipes; the
            // fifth pipeline of the flow-B traversal (sw1_ig0) carries the
            // double-size classifier (the paper's ppl5 skew).
            s.push_str(&table_block(PCLASS_TABLES, "_sw0a"));
            s.push_str(&table_block(PCLASS_TABLES, "_sw1x"));
            s.push_str(&table_block(PCLASS_TABLES, "_sw1a"));
            s.push_str(&table_block(TELEMETRY_TABLE, "_z0"));
            let mut ctl = String::from(
                r#"
control g4_sw0_ig0 {
  if (hdr.ipv4.isValid()) {
    apply(acl_filter_sw0);
    if (meta.drop == 0) {
      apply(eip_lookup_sw0);
      apply(dscp_stats_z0);
    }
  } else {
    call drop_();
  }
}
control g4_sw0_eg1 {
  if (meta.drop == 0) {
    apply(stats_egress_sw0);
  }
}
control g4_sw0_ig1 {
  if (meta.drop == 0) {
"#,
            );
            ctl.push_str(&pclass_apply("_sw0a"));
            ctl.push_str(
                r#"    apply(underlay_route_sw0);
  }
}
control g4_sw0_eg0 {
  if (meta.drop == 0) {
    apply(vni_underlay_sw0);
    apply(nh_rewrite_sw0);
  }
}
control g4_sw1_ig0 {
  if (meta.drop == 0) {
"#,
            );
            ctl.push_str(&pclass_apply("_sw1x"));
            ctl.push_str(
                r#"    apply(eip_lookup_sw1);
  }
}
control g4_sw1_eg1 {
  if (meta.drop == 0) {
    apply(stats_egress_sw1);
  }
}
control g4_sw1_ig1 {
  if (meta.drop == 0) {
"#,
            );
            ctl.push_str(&pclass_apply("_sw1a"));
            ctl.push_str(
                r#"    apply(underlay_route_sw1);
  }
}
control g4_sw1_eg0 {
  if (meta.drop == 0) {
    apply(vni_underlay_sw1);
    apply(nh_rewrite_sw1);
  }
}
pipeline sw0_ig0 { parser = gw_parser; control = g4_sw0_ig0; }
pipeline sw0_eg1 { control = g4_sw0_eg1; }
pipeline sw0_ig1 { control = g4_sw0_ig1; }
pipeline sw0_eg0 { control = g4_sw0_eg0; }
pipeline sw1_ig0 { control = g4_sw1_ig0; }
pipeline sw1_eg1 { control = g4_sw1_eg1; }
pipeline sw1_ig1 { control = g4_sw1_ig1; }
pipeline sw1_eg0 { control = g4_sw1_eg0; }
topology {
  start -> sw0_ig0;
  sw0_ig0 -> sw0_eg1 when (meta.cross == 0);
  sw0_eg1 -> sw0_ig1;
  sw0_ig1 -> sw0_eg0;
  sw0_ig0 -> sw0_eg0 when (meta.cross == 1);
  sw0_eg0 -> end when (meta.cross == 0);
  sw0_eg0 -> sw1_ig0 when (meta.cross == 1);
  sw1_ig0 -> sw1_eg1;
  sw1_eg1 -> sw1_ig1;
  sw1_ig1 -> sw1_eg0;
  sw1_eg0 -> end;
}
"#,
            );
            s.push_str(&ctl);
        }
        _ => unreachable!(),
    }

    s.push_str(
        r#"
deparser { emit(ethernet); emit(ipv4); emit(udp); emit(tcp); emit(vxlan); }
intent eip_traffic_is_tunneled_or_dropped {
  given hdr.ethernet.ether_type == 0x0800;
  expect meta.drop == 1 || hdr.vxlan.$valid == 1;
}
intent non_ip_is_dropped {
  given hdr.ethernet.ether_type != 0x0800;
  expect meta.drop == 1;
}
"#,
    );
    s
}

/// Emits the rule-set document for gw-`level` at `scale`.
pub fn gw_rules(level: u8, scale: GwScale) -> String {
    let n = scale.eips;
    let mut s = String::new();
    // `base` lets switch-1 tables match post-encapsulation underlay
    // addresses (0x0b…) while switch-0 tables match overlay EIPs (10.…).
    let eip = |s: &mut String, table: &str, base: u32| {
        let _ = writeln!(s, "rules {table} {{");
        for k in 0..n {
            // dst base+(k+1) → vni k+1, port (k%4)+1, cross = parity.
            let _ = writeln!(
                s,
                "  {} => eip_hit({}, {}, {});",
                base + 1 + k as u32,
                k + 1,
                (k % 4) + 1,
                k % 2
            );
        }
        let _ = writeln!(s, "}}");
    };
    let acl = |s: &mut String, table: &str| {
        let _ = writeln!(s, "rules {table} {{");
        // One deny rule on a reserved source block.
        let _ = writeln!(s, "  0xc0a80100 &&& 0xffffff00 => acl_deny();");
        let _ = writeln!(s, "}}");
    };
    let encap = |s: &mut String, table: &str| {
        let _ = writeln!(s, "rules {table} {{");
        for k in 0..n {
            let _ = writeln!(s, "  {} => encap_to({});", k + 1, 0x0b00_0001u32 + k as u32);
        }
        let _ = writeln!(s, "}}");
    };
    let stats = |s: &mut String, table: &str| {
        let _ = writeln!(s, "rules {table} {{");
        for p in 1..=4usize {
            let _ = writeln!(s, "  {p} => set_stats({p});");
        }
        let _ = writeln!(s, "}}");
    };
    let l3 = |s: &mut String, table: &str, base: u32| {
        let _ = writeln!(s, "rules {table} {{");
        for k in 0..n {
            let _ = writeln!(s, "  0x{:x}/32 => set_nh({});", base + 1 + k as u32, k + 1);
        }
        let _ = writeln!(s, "}}");
    };
    let nh = |s: &mut String, table: &str| {
        let _ = writeln!(s, "rules {table} {{");
        for k in 0..n {
            let _ = writeln!(
                s,
                "  {} => nh_rewrite_a(0x00aa0000{:04x}, {});",
                k + 1,
                k + 1,
                (k % 4) + 1
            );
        }
        let _ = writeln!(s, "}}");
    };
    // The fresh-field classifier chain: `count` source-port classes chained
    // through three class maps; the gate keeps only the diagonal
    // (class j ↔ vni j) and, like production policers, drops the rest.
    let pclass = |s: &mut String, suffix: &str, count: usize| {
        let _ = writeln!(s, "rules port_class{suffix} {{");
        for j in 0..count {
            let _ = writeln!(s, "  {} => set_pclass{suffix}({});", 1000 + j, j + 1);
        }
        let _ = writeln!(s, "}}");
        for map in ["class_map1", "class_map2", "class_map3"] {
            let _ = writeln!(s, "rules {map}{suffix} {{");
            for j in 0..count {
                let _ = writeln!(s, "  {} => set_{}{suffix}({});", j + 1,
                    match map { "class_map1" => "cm1", "class_map2" => "cm2", _ => "cm3" },
                    j + 1);
            }
            let _ = writeln!(s, "}}");
        }
        let _ = writeln!(s, "rules class_gate{suffix} {{");
        for j in 0..count {
            // Class j is permitted only on its QoS-aligned egress port.
            let _ = writeln!(s, "  {}, {} => set_prio{suffix}({});", j + 1, (j % 4) + 1, (j % 8) + 1);
        }
        // Unclassified traffic passes.
        let _ = writeln!(s, "  0, _ => set_prio{suffix}(0);");
        let _ = writeln!(s, "}}");
    };

    let telemetry = |s: &mut String, suffix: &str| {
        let _ = writeln!(s, "rules dscp_stats{suffix} {{");
        for j in 1..=(n / 2).clamp(4, 8) {
            let _ = writeln!(s, "  {} => set_tclass{suffix}({});", 4 * j, j);
        }
        let _ = writeln!(s, "}}");
    };

    match level {
        1 => {
            eip(&mut s, "eip_lookup", 0x0a00_0000);
            encap(&mut s, "vni_underlay");
        }
        2 => {
            eip(&mut s, "eip_lookup", 0x0a00_0000);
            acl(&mut s, "acl_filter");
            encap(&mut s, "vni_underlay");
            nh(&mut s, "nh_rewrite");
            pclass(&mut s, "", (n / 2).max(4));
            telemetry(&mut s, "_z");
        }
        3 => {
            eip(&mut s, "eip_lookup", 0x0a00_0000);
            acl(&mut s, "acl_filter");
            stats(&mut s, "stats_egress");
            l3(&mut s, "underlay_route", 0x0a00_0000);
            encap(&mut s, "vni_underlay");
            nh(&mut s, "nh_rewrite");
            pclass(&mut s, "_a", (n / 4).max(4));
            telemetry(&mut s, "_z");
            pclass(&mut s, "_b", (n / 4).max(4));
        }
        4 => {
            // Switch 0 matches overlay EIPs; switch 1 sits behind sw0's
            // encapsulation and matches underlay addresses.
            for (sw, base) in [("sw0", 0x0a00_0000u32), ("sw1", 0x0b00_0000u32)] {
                eip(&mut s, &format!("eip_lookup_{sw}"), base);
                acl(&mut s, &format!("acl_filter_{sw}"));
                stats(&mut s, &format!("stats_egress_{sw}"));
                l3(&mut s, &format!("underlay_route_{sw}"), base);
                encap(&mut s, &format!("vni_underlay_{sw}"));
                nh(&mut s, &format!("nh_rewrite_{sw}"));
            }
            pclass(&mut s, "_sw0a", (n / 2).max(4));
            telemetry(&mut s, "_z0");
            // ppl5 skew: the fifth pipeline's classifier is twice as large.
            pclass(&mut s, "_sw1x", (n / 2).max(4));
            pclass(&mut s, "_sw1a", (n / 4).max(2));
        }
        _ => unreachable!(),
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_levels_compile() {
        for level in 1..=4u8 {
            let w = gw(level, GwScale { eips: 4 });
            assert_eq!(w.name, format!("gw-{level}"));
            assert_eq!(w.program.num_pipes, [1, 2, 4, 8][level as usize - 1]);
            assert_eq!(w.program.num_switches, [1, 1, 1, 2][level as usize - 1]);
        }
    }

    #[test]
    fn rule_sets_double() {
        assert_eq!(rule_set(1).eips, 4);
        assert_eq!(rule_set(2).eips, 8);
        assert_eq!(rule_set(3).eips, 16);
        assert_eq!(rule_set(4).eips, 32);
    }

    #[test]
    fn loc_grows_with_level() {
        let locs: Vec<usize> = (1..=4).map(|l| gw(l, GwScale { eips: 4 }).program.loc).collect();
        assert!(locs.windows(2).all(|w| w[0] < w[1]), "{locs:?}");
    }

    #[test]
    fn rules_loc_grows_with_scale() {
        let a = gw(2, rule_set(1)).program.rules_loc;
        let b = gw(2, rule_set(3)).program.rules_loc;
        assert!(b > a * 2, "{a} vs {b}");
    }

    #[test]
    fn gw4_is_multi_switch_with_cross_steering() {
        let w = gw(4, GwScale { eips: 4 });
        let names: Vec<&str> = w
            .program
            .cfg
            .pipelines()
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert!(names.contains(&"sw0_ig0"));
        assert!(names.contains(&"sw1_eg0"));
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn possible_paths_grow_superlinearly_with_pipes() {
        use meissa_ir::count_paths;
        let p1 = count_paths(&gw(1, GwScale { eips: 4 }).program.cfg).total;
        let p3 = count_paths(&gw(3, GwScale { eips: 4 }).program.cfg).total;
        assert!(p3 > p1.mul(&p1), "gw-3 paths ≫ gw-1 paths: {p1} vs {p3}");
    }

    #[test]
    fn summary_is_cheaper_than_naive_on_gw3() {
        // The Fig. 11b shape at miniature scale: code summary must reduce
        // SMT calls on the multi-pipe gateways.
        use meissa_core::Meissa;
        let w = gw(3, GwScale { eips: 8 });
        let with = Meissa::new().run(&w.program);
        let without = Meissa::without_summary().run(&w.program);
        assert_eq!(with.templates.len(), without.templates.len(), "coverage equal");
        assert!(
            with.stats.smt_checks < without.stats.smt_checks,
            "w/ summary {} vs w/o {}",
            with.stats.smt_checks,
            without.stats.smt_checks
        );
    }
}
