//! The evaluation corpus (paper §5, Table 1).
//!
//! Eight data plane programs:
//!
//! | name | paper description | here |
//! |---|---|---|
//! | Router | switch.p4-derived L3 router | [`router`] |
//! | mTag | mTag-edge tag insertion/removal | [`mtag`] |
//! | ACL | dst/src/ECN filtering on Router | [`acl`] |
//! | switch.p4 | multifunction switch (L2/L3/ECMP/tunnel/ACL/MPLS) | [`switch_lite`] |
//! | gw-1..gw-4 | production gateways, 1–8 pipes, 1–2 switches | [`gw::gw`] |
//!
//! The paper's production programs and rule sets are proprietary; the
//! generators in [`gw`] emit programs with the same *shape* (pipeline
//! counts, per-pipe functionality, rule-set doubling across set-1..set-4,
//! the gw-4/set-4 fifth-pipeline complexity skew) at laptop scale — see
//! DESIGN.md's substitution table. Random rule sets for the open-source
//! programs mirror "We generate random table rule sets for Router, mTag,
//! ACL and switch.p4".

pub mod bugs;
pub mod gw;
pub mod programs;
pub mod randrules;

use meissa_lang::{compile, parse_program, parse_rules, CompiledProgram, RuleSet};

/// One evaluation workload: a compiled program with installed rules.
pub struct Workload {
    /// Short name used in figures ("Router", "gw-4", …).
    pub name: String,
    /// The compiled program.
    pub program: CompiledProgram,
}

impl Workload {
    /// Table 1 row: (name, LOC, #pipes, #switches).
    pub fn table1_row(&self) -> (String, usize, usize, usize) {
        (
            self.name.clone(),
            self.program.loc,
            self.program.num_pipes,
            self.program.num_switches,
        )
    }
}

fn build(name: &str, src: &str, rules: &RuleSet) -> Workload {
    let ast = parse_program(src)
        .unwrap_or_else(|e| panic!("corpus program {name} failed to parse: {e}"));
    let program = compile(&ast, rules)
        .unwrap_or_else(|e| panic!("corpus program {name} failed to compile: {e}"));
    Workload {
        name: name.to_string(),
        program,
    }
}

/// The Router workload with `rules_per_table` random rules (seeded).
pub fn router(rules_per_table: usize, seed: u64) -> Workload {
    let ast = parse_program(programs::ROUTER).unwrap();
    let rules = randrules::generate_rules(&ast, rules_per_table, seed);
    build("Router", programs::ROUTER, &rules)
}

/// The mTag workload.
pub fn mtag(rules_per_table: usize, seed: u64) -> Workload {
    let ast = parse_program(programs::MTAG).unwrap();
    let rules = randrules::generate_rules(&ast, rules_per_table, seed);
    build("mTag", programs::MTAG, &rules)
}

/// The ACL workload.
pub fn acl(rules_per_table: usize, seed: u64) -> Workload {
    let ast = parse_program(programs::ACL).unwrap();
    let rules = randrules::generate_rules(&ast, rules_per_table, seed);
    build("ACL", programs::ACL, &rules)
}

/// The switch.p4 stand-in workload.
pub fn switch_lite(rules_per_table: usize, seed: u64) -> Workload {
    let ast = parse_program(programs::SWITCH_LITE).unwrap();
    let rules = randrules::generate_rules(&ast, rules_per_table, seed);
    build("switch.p4", programs::SWITCH_LITE, &rules)
}

/// The connection-tracking firewall workload (stateful; rule-free).
pub fn stateful_firewall() -> Workload {
    compile_pair("fw-conntrack", programs::STATEFUL_FIREWALL, "")
}

/// The token-bucket rate limiter workload (stateful; rule-free).
pub fn token_bucket() -> Workload {
    compile_pair("token-bucket", programs::TOKEN_BUCKET, "")
}

/// All four open-source workloads at a default scale.
pub fn open_source_corpus() -> Vec<Workload> {
    vec![
        router(8, 1),
        mtag(6, 2),
        acl(8, 3),
        switch_lite(4, 4),
    ]
}

/// Convenience: compile a (source, rules-text) pair.
pub fn compile_pair(name: &str, src: &str, rules_text: &str) -> Workload {
    let rules = parse_rules(rules_text)
        .unwrap_or_else(|e| panic!("corpus rules for {name} failed to parse: {e}"));
    build(name, src, &rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_source_corpus_compiles() {
        let corpus = open_source_corpus();
        assert_eq!(corpus.len(), 4);
        for w in &corpus {
            assert!(w.program.loc > 20, "{} too small", w.name);
            assert_eq!(w.program.num_pipes, 1, "{}", w.name);
            assert!(!w.program.intents.is_empty(), "{} has intents", w.name);
        }
    }

    #[test]
    fn table1_rows_have_expected_shape() {
        let w = router(4, 9);
        let (name, loc, pipes, switches) = w.table1_row();
        assert_eq!(name, "Router");
        assert!(loc > 30);
        assert_eq!((pipes, switches), (1, 1));
    }

    #[test]
    fn corpus_is_deterministic_per_seed() {
        let a = router(5, 42);
        let b = router(5, 42);
        assert_eq!(a.program.rules_loc, b.program.rules_loc);
        let c = router(5, 43);
        let _ = c; // different seed still compiles
    }
}
