//! Random table rule-set generation for the open-source corpus
//! ("We generate random table rule sets for Router, mTag, ACL and
//! switch.p4", §5.1).
//!
//! Values are drawn from deliberately *small, overlapping domains* so that
//! chained tables line up the way production rule sets do (a port assigned
//! by one table is a key another table matches on — the Fig. 7 diagonal);
//! a seeded RNG adds jitter for wide fields and action choice.

use meissa_lang::ast::{MatchKind, Program, TableDecl};
use meissa_lang::{KeyMatch, Rule, RuleSet};
use meissa_testkit::rng::{RngExt, SeedableRng, StdRng};

/// Generates `per_table` rules for every table declared in `prog`.
pub fn generate_rules(prog: &Program, per_table: usize, seed: u64) -> RuleSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = RuleSet::new();
    for table in &prog.tables {
        for i in 0..per_table {
            let rule = generate_rule(prog, table, i, &mut rng);
            set.push(&table.name, rule);
        }
    }
    set
}

fn width_of_key(prog: &Program, field: &str) -> u16 {
    let parts: Vec<&str> = field.split('.').collect();
    match parts.as_slice() {
        ["hdr", header, f] => prog
            .headers
            .iter()
            .find(|h| &h.name == header)
            .and_then(|h| h.fields.iter().find(|(n, _)| n == f))
            .map(|(_, w)| *w)
            .unwrap_or(8),
        [block, f] => prog
            .metadatas
            .iter()
            .find(|m| &m.name == block)
            .and_then(|m| m.fields.iter().find(|(n, _)| n == f))
            .map(|(_, w)| *w)
            .unwrap_or(8),
        _ => 8,
    }
}

fn mask(width: u16) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

fn generate_rule(prog: &Program, table: &TableDecl, i: usize, rng: &mut StdRng) -> Rule {
    let keys = table
        .keys
        .iter()
        .map(|(field, kind)| {
            let w = width_of_key(prog, field);
            let m = mask(w);
            match kind {
                // Small sequential exacts line up across chained tables.
                MatchKind::Exact => KeyMatch::Exact((i as u128 + 1) & m),
                MatchKind::Lpm => {
                    // /24-style prefixes on wide keys, shorter on narrow.
                    let len = (w / 4 * 3).clamp(1, w);
                    let base = ((i as u128 + 1) << (w - len)) & m;
                    KeyMatch::Prefix(base, len)
                }
                MatchKind::Ternary => {
                    // Mostly fully-masked exacts with occasional wildcards
                    // on a random nibble — realistic ACL shapes.
                    let v = (i as u128 + 1) & m;
                    if rng.random_range(0..4) == 0 && w >= 8 {
                        let hole = rng.random_range(0..(w / 4)) as u32 * 4;
                        KeyMatch::Ternary(v, m & !(0xf << hole))
                    } else {
                        KeyMatch::Ternary(v, m)
                    }
                }
                MatchKind::Range => {
                    let span = 8u128.min(m);
                    let lo = (i as u128 * (span + 2)) & m;
                    KeyMatch::Range(lo, (lo + span).min(m))
                }
            }
        })
        .collect();

    // Cycle through the table's actions, preferring non-drop actions so
    // most rules exercise real behaviour.
    let mut names: Vec<&String> = table.actions.iter().collect();
    names.sort_by_key(|n| n.contains("drop") || n.contains("deny"));
    let aname = names[i % names.len().max(1)].clone();
    let decl = prog
        .actions
        .iter()
        .find(|a| a.name == aname)
        .unwrap_or_else(|| panic!("table {} references unknown action {aname}", table.name));
    let args = decl
        .params
        .iter()
        .enumerate()
        .map(|(j, (_, w))| {
            let m = mask(*w);
            // Small sequential values (aligned with exact keys), never 0 so
            // "port assigned" intents stay meaningful.
            (((i + j) as u128) & m).max(1u128.min(m))
        })
        .collect();
    Rule {
        keys,
        action: aname,
        args,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;
    use meissa_lang::parse_program;

    #[test]
    fn generates_requested_counts() {
        let prog = parse_program(programs::ROUTER).unwrap();
        let rs = generate_rules(&prog, 10, 1);
        assert_eq!(rs.rules_for("ipv4_lpm").len(), 10);
        assert_eq!(rs.rules_for("dmac_rewrite").len(), 10);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let prog = parse_program(programs::ACL).unwrap();
        let a = generate_rules(&prog, 8, 7);
        let b = generate_rules(&prog, 8, 7);
        assert_eq!(a.rules_for("acl_filter"), b.rules_for("acl_filter"));
    }

    #[test]
    fn rules_compile_against_their_program() {
        for src in [
            programs::ROUTER,
            programs::MTAG,
            programs::ACL,
            programs::SWITCH_LITE,
        ] {
            let prog = parse_program(src).unwrap();
            let rs = generate_rules(&prog, 6, 99);
            meissa_lang::compile(&prog, &rs).expect("generated rules compile");
        }
    }

    #[test]
    fn exact_keys_are_distinct_per_rule() {
        let prog = parse_program(programs::ROUTER).unwrap();
        let rs = generate_rules(&prog, 12, 3);
        let keys: Vec<_> = rs
            .rules_for("dmac_rewrite")
            .iter()
            .map(|r| r.keys[0])
            .collect();
        let uniq: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(uniq.len(), keys.len());
    }

    #[test]
    fn golden_sequence_for_pinned_seed() {
        // Regression pin: the testkit RNG stream is versioned
        // (`meissa_testkit::rng::STREAM_VERSION`), so the rules generated
        // for a given seed are part of the reproducibility contract. If
        // this test breaks, the RNG stream changed and every recorded
        // experiment seed is invalidated — bump STREAM_VERSION and rerun
        // the evaluation rather than editing the expectations here.
        let prog = parse_program(programs::ACL).unwrap();
        let rendered: Vec<String> = generate_rules(&prog, 4, 42)
            .rules_for("acl_filter")
            .iter()
            .map(|r| format!("{:?} => {}", r.keys, r.action))
            .collect();
        // Rules 2 and 4 carry jittered ternary masks (a wildcarded nibble),
        // proving the RNG stream — not just the sequential skeleton — is
        // pinned.
        assert_eq!(
            rendered,
            vec![
                "[Ternary(1, 4294967295), Ternary(1, 4294967295), Range(0, 3)] => permit",
                "[Ternary(2, 268435455), Ternary(2, 4294967295), Range(1, 3)] => deny",
                "[Ternary(3, 4294967295), Ternary(3, 4294967295), Range(2, 3)] => permit",
                "[Ternary(4, 4294967295), Ternary(4, 4294963455), Range(3, 3)] => deny",
            ]
        );
    }

    #[test]
    fn action_args_fit_their_widths() {
        let prog = parse_program(programs::MTAG).unwrap();
        let rs = generate_rules(&prog, 20, 5);
        for r in rs.rules_for("mtag_add") {
            for &a in &r.args {
                assert!(a < 256, "8-bit arg fits");
            }
        }
    }
}
