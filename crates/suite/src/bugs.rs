//! The Table 2 bug corpus: sixteen representative bugs.
//!
//! Six **code bugs** (1–6) are defects in the program source or its
//! installed rules: the compiled target is faithful, but behaviour violates
//! an intent (or the deparser omits a reachable header). Ten **non-code
//! bugs** (7–16) pair a *correct* source with an injected backend
//! [`Fault`] — toolchain defects invisible to any source-level analysis.
//!
//! Bug programs are sized to reproduce the paper's tool matrix honestly:
//! bugs 3/4/7/8 live in a tiny table-free program (the class p4pktgen can
//! handle), bugs 9–11 in a small program using `setValid`/hash (features
//! p4pktgen's subset lacks, per §8), and bugs 6/12–16 in the two-pipeline
//! elastic-IP gateway (production-shaped; too complex for Gauntlet's
//! model-based mode, per §6).

use crate::Workload;
use meissa_dataplane::Fault;

/// Code bug vs non-code bug (Table 2's two sections).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BugKind {
    /// A defect in the P4 source or rule set.
    Code,
    /// A toolchain defect: correct source, faulty compiled target.
    NonCode,
}

/// Column order of the Table 2 tool matrix.
pub const TOOLS: [&str; 5] = ["Meissa", "p4pktgen", "PTA", "Gauntlet", "Aquila"];

/// One Table 2 row.
pub struct BugCase {
    /// Paper index (1–16).
    pub index: usize,
    /// Paper row label.
    pub name: &'static str,
    /// Code or non-code.
    pub kind: BugKind,
    /// The program (+ rules) under test.
    pub workload: Workload,
    /// Backend fault to inject (`Fault::None` for code bugs).
    pub fault: Fault,
    /// The paper's reported detections, in [`TOOLS`] order.
    pub paper: [bool; 5],
}

/// Tiny table-free program: parser + straight control logic. The class of
/// program p4pktgen fully supports.
const TINY: &str = r#"
header ethernet { dst_addr: 48; src_addr: 48; ether_type: 16; }
header ipv4 {
  version: 4; ihl: 4; dscp: 6; ecn: 2; total_len: 16;
  ttl: 8; protocol: 8; checksum: 16; src_addr: 32; dst_addr: 32;
}
header snap { code: 16; }
metadata meta { egress_port: 9; drop: 1; seen_v4: 1; }
parser tiny_parser {
  state start {
    extract(ethernet);
    select (hdr.ethernet.ether_type) {
      0x0800 => parse_ipv4;
      0x0800 &&& 0xfc00 => parse_snap;
      default => accept;
    }
  }
  state parse_ipv4 { extract(ipv4); accept; }
  state parse_snap { extract(snap); accept; }
}
action mark_v4() { meta.seen_v4 = 1; hdr.ipv4.dscp = 0x2e; meta.egress_port = 2; }
action pass_other() { meta.egress_port = 1; }
action drop_() { meta.drop = 1; }
control tiny_ctl {
  if (hdr.ipv4.isValid()) {
    call mark_v4();
    if (hdr.ipv4.ttl < 1) {
      call drop_();
    }
  } else {
    call pass_other();
  }
}
pipeline main { parser = tiny_parser; control = tiny_ctl; }
deparser { emit(ethernet); emit(snap); emit(ipv4); }
intent v4_is_marked {
  given hdr.ethernet.ether_type == 0x0800;
  expect meta.drop == 1 || meta.seen_v4 == 1;
}
intent something_egresses {
  given true;
  expect meta.drop == 1 || meta.egress_port != 0;
}
"#;

/// Small program exercising `setValid` and hashing — features p4pktgen's
/// subset lacks, while Gauntlet's model-based testing handles them.
const SMALLX: &str = r#"
header ethernet { dst_addr: 48; src_addr: 48; ether_type: 16; }
header ipv4 {
  version: 4; ihl: 4; diffserv: 8; total_len: 16;
  ttl: 8; protocol: 8; checksum: 16; src_addr: 32; dst_addr: 32;
}
header tcp { src_port: 16; dst_port: 16; }
header probe { tag: 16; nonce: 16; }
metadata meta { egress_port: 9; drop: 1; }
parser sx_parser {
  state start {
    extract(ethernet);
    select (hdr.ethernet.ether_type) { 0x0800 => parse_ipv4; default => accept; }
  }
  state parse_ipv4 {
    extract(ipv4);
    select (hdr.ipv4.protocol) { 6 => parse_tcp; default => accept; }
  }
  state parse_tcp { extract(tcp); accept; }
}
action attach_probe() {
  hdr.probe.setValid();
  hdr.probe.tag = 0xbeef;
  hdr.probe.nonce = hash(crc16, 16, hdr.ipv4.src_addr, hdr.ipv4.dst_addr);
  meta.egress_port = 3;
}
action plain_forward() { meta.egress_port = 1; }
action rewrite_src(v: 32) { hdr.ipv4.src_addr = v; }
action drop_() { meta.drop = 1; }
control sx_ctl {
  if (hdr.tcp.isValid()) {
    if (hdr.tcp.dst_port < 4096) {
      call attach_probe();
      call rewrite_src(0x0a0a0a0a);
    } else {
      call plain_forward();
    }
  } else {
    if (hdr.ipv4.isValid()) {
      call plain_forward();
    } else {
      call drop_();
    }
  }
}
pipeline main { parser = sx_parser; control = sx_ctl; }
deparser { emit(ethernet); emit(ipv4); emit(tcp); emit(probe); }
intent probes_reach_wire {
  given hdr.ethernet.ether_type == 0x0800 && hdr.ipv4.protocol == 6 && hdr.tcp.dst_port == 80;
  expect meta.drop == 1 || hdr.probe.$valid == 1;
}
intent port_boundary_probe {
  given hdr.ethernet.ether_type == 0x0800 && hdr.ipv4.protocol == 6 && hdr.tcp.dst_port == 4096;
  expect true;
}
"#;

/// The two-pipeline elastic-IP gateway (§6's product shape): ACL + EIP
/// lookup in the ingress pipe, VXLAN encapsulation with inner-header copies
/// and checksum update in the egress pipe.
fn eipgw_source(bug6_forget_inner_tcp: bool, bug4_invert_encap_guard: bool) -> String {
    let inner_tcp_validate = if bug6_forget_inner_tcp {
        // §6: "our engineers forgot to parse inner TCP in the egress
        // pipeline, so inner TCP would never be valid".
        ""
    } else {
        "hdr.inner_tcp.setValid();"
    };
    let encap_guard = if bug4_invert_encap_guard {
        "meta.do_encap == 0"
    } else {
        "meta.do_encap == 1"
    };
    format!(
        r#"
header ethernet {{ dst_addr: 48; src_addr: 48; ether_type: 16; }}
header ipv4 {{
  version: 4; ihl: 4; dscp: 6; ecn: 2; total_len: 16;
  ttl: 8; protocol: 8; checksum: 16; src_addr: 32; dst_addr: 32;
}}
header tcp {{ src_port: 16; dst_port: 16; seq_no: 32; checksum: 16; }}
header udp {{ src_port: 16; dst_port: 16; length: 16; checksum: 16; }}
header vxlan {{ flags: 8; reserved: 24; vni: 24; reserved2: 8; }}
header inner_ipv4 {{ src_addr: 32; dst_addr: 32; proto: 8; }}
header inner_tcp {{ src_port: 16; dst_port: 16; checksum: 16; }}
metadata meta {{ egress_port: 9; drop: 1; vni: 24; do_encap: 1; }}

parser gwp {{
  state start {{
    extract(ethernet);
    select (hdr.ethernet.ether_type) {{ 0x0800 => parse_ipv4; default => accept; }}
  }}
  state parse_ipv4 {{
    extract(ipv4);
    select (hdr.ipv4.protocol) {{ 6 => parse_tcp; default => accept; }}
  }}
  state parse_tcp {{ extract(tcp); accept; }}
}}

action drop_() {{ meta.drop = 1; }}
action noop() {{ }}
action acl_deny() {{ meta.drop = 1; }}
action eip_hit(vni: 24, port: 9) {{
  meta.vni = vni;
  meta.egress_port = port;
  meta.do_encap = 1;
}}
action mark_dscp() {{ hdr.ipv4.dscp = 0x2e; }}
action encap_to(underlay: 32) {{
  hdr.inner_ipv4.setValid();
  hdr.inner_ipv4.src_addr = hdr.ipv4.src_addr;
  hdr.inner_ipv4.dst_addr = hdr.ipv4.dst_addr;
  hdr.inner_ipv4.proto = hdr.ipv4.protocol;
  {inner_tcp_validate}
  hdr.inner_tcp.src_port = hdr.tcp.src_port;
  hdr.inner_tcp.dst_port = hdr.tcp.dst_port;
  hdr.tcp.setInvalid();
  hdr.udp.setValid();
  hdr.udp.dst_port = 4789;
  hdr.vxlan.setValid();
  hdr.vxlan.flags = 0x08;
  hdr.vxlan.vni = meta.vni;
  hdr.ipv4.dst_addr = underlay;
  hdr.ipv4.checksum = hash(csum16, 16, hdr.ipv4.src_addr, hdr.ipv4.dst_addr);
}}
action put_inner_csum() {{
  hdr.inner_tcp.checksum = hash(csum16, 16,
    hdr.inner_ipv4.src_addr, hdr.inner_ipv4.dst_addr,
    hdr.inner_tcp.src_port, hdr.inner_tcp.dst_port);
}}

table acl_filter {{
  key = {{ hdr.ipv4.src_addr: ternary; }}
  actions = {{ acl_deny; noop; }}
  default_action = noop();
  size = 512;
}}
table eip_lookup {{
  key = {{ hdr.ipv4.dst_addr: exact; }}
  actions = {{ eip_hit; drop_; }}
  default_action = drop_();
  size = 4096;
}}
table vni_underlay {{
  key = {{ meta.vni: exact; }}
  actions = {{ encap_to; drop_; }}
  default_action = drop_();
  size = 4096;
}}

control gw_ingress {{
  if (hdr.ipv4.isValid()) {{
    apply(acl_filter);
    if (meta.drop == 0) {{
      apply(eip_lookup);
      if (hdr.tcp.isValid()) {{
        if (hdr.tcp.src_port < 1024) {{
          call mark_dscp();
        }}
      }}
      if (hdr.ipv4.ttl < 2) {{
        call drop_();
      }}
    }}
  }} else {{
    call drop_();
  }}
}}
control gw_egress {{
  if (meta.drop == 0) {{
    if ({encap_guard} && hdr.tcp.isValid()) {{
      apply(vni_underlay);
      if (hdr.inner_tcp.isValid()) {{
        call put_inner_csum();
      }}
    }}
  }}
}}

pipeline ig0 {{ parser = gwp; control = gw_ingress; }}
pipeline eg0 {{ control = gw_egress; }}
topology {{ start -> ig0; ig0 -> eg0; eg0 -> end; }}
deparser {{
  emit(ethernet); emit(ipv4); emit(udp); emit(vxlan);
  emit(inner_ipv4); emit(inner_tcp); emit(tcp);
}}

intent known_eip_tcp_is_tunneled {{
  given hdr.ethernet.ether_type == 0x0800 && hdr.ipv4.protocol == 6
     && hdr.ipv4.dst_addr == 10.0.0.1 && hdr.ipv4.src_addr == 1.2.3.4
     && hdr.ipv4.ttl == 64;
  expect hdr.vxlan.$valid == 1;
}}
intent tunneled_tcp_has_inner_csum {{
  given hdr.ethernet.ether_type == 0x0800 && hdr.ipv4.protocol == 6
     && hdr.ipv4.dst_addr == 10.0.0.1 && hdr.ipv4.src_addr == 1.2.3.4
     && hdr.ipv4.ttl == 64;
  expect meta.drop == 1
      || (hdr.inner_tcp.$valid == 1 && hdr.inner_tcp.checksum == hash(csum16, 16,
            hdr.inner_ipv4.src_addr, hdr.inner_ipv4.dst_addr,
            hdr.inner_tcp.src_port, hdr.inner_tcp.dst_port));
}}
intent blocked_sources_are_dropped {{
  given hdr.ethernet.ether_type == 0x0800
     && (hdr.ipv4.src_addr & 0xffffff00) == 0xc0a80100;
  expect meta.drop == 1;
}}
intent port_boundary_probe {{
  given hdr.ethernet.ether_type == 0x0800 && hdr.ipv4.protocol == 6
     && hdr.tcp.src_port == 1024 && hdr.ipv4.dst_addr == 10.0.0.1
     && hdr.ipv4.src_addr == 1.2.3.4 && hdr.ipv4.ttl == 64;
  expect true;
}}
intent ttl_boundary_probe {{
  given hdr.ethernet.ether_type == 0x0800 && hdr.ipv4.ttl == 2
     && hdr.ipv4.dst_addr == 10.0.0.1 && hdr.ipv4.src_addr == 1.2.3.4;
  expect true;
}}
"#
    )
}

/// Good rules for the gateway corpus programs.
const EIPGW_RULES: &str = r#"
rules acl_filter {
  0xc0a80100 &&& 0xffffff00 => acl_deny();
}
rules eip_lookup {
  10.0.0.1 => eip_hit(1, 1);
  10.0.0.2 => eip_hit(2, 2);
  10.0.0.3 => eip_hit(3, 1);
}
rules vni_underlay {
  1 => encap_to(0x0b000001);
  2 => encap_to(0x0b000002);
  3 => encap_to(0x0b000003);
}
"#;

/// Rules with an unrestricted (overlapping, too-broad) ACL permit ahead of
/// the deny — Table 2 bug 2. Also the overlap PriorityInverted (bug 8 at
/// gateway scale) would flip.
const EIPGW_RULES_BAD_ACL: &str = r#"
rules acl_filter {
  0x00000000 &&& 0x00000000 => noop();
  0xc0a80100 &&& 0xffffff00 => acl_deny();
}
rules eip_lookup {
  10.0.0.1 => eip_hit(1, 1);
  10.0.0.2 => eip_hit(2, 2);
  10.0.0.3 => eip_hit(3, 1);
}
rules vni_underlay {
  1 => encap_to(0x0b000001);
  2 => encap_to(0x0b000002);
  3 => encap_to(0x0b000003);
}
"#;

/// Rules with a routing misconfiguration: one EIP forwards to port 0 (an
/// invalid port in this deployment) — Table 2 bug 1.
const EIPGW_RULES_BAD_ROUTE: &str = r#"
rules acl_filter {
  0xc0a80100 &&& 0xffffff00 => acl_deny();
}
rules eip_lookup {
  10.0.0.1 => eip_hit(1, 0);
  10.0.0.2 => eip_hit(2, 2);
}
rules vni_underlay {
  1 => encap_to(0x0b000001);
  2 => encap_to(0x0b000002);
}
"#;

fn eipgw(name: &str, bug6: bool, bug4: bool, rules: &str) -> Workload {
    let src = eipgw_source(bug6, bug4);
    let mut w = crate::compile_pair(name, &src, rules);
    w.name = name.to_string();
    w
}

/// Adds the "valid port" intent used by the routing-misconfiguration case.
fn eipgw_with_port_intent(name: &str, rules: &str) -> Workload {
    let mut src = eipgw_source(false, false);
    src.push_str(
        r#"
intent forwarded_packets_have_a_real_port {
  given hdr.ethernet.ether_type == 0x0800;
  expect meta.drop == 1 || meta.egress_port != 0;
}
"#,
    );
    crate::compile_pair(name, &src, rules)
}

/// Builds all sixteen Table 2 bug cases.
#[allow(clippy::vec_init_then_push)] // sixteen structured rows read best sequentially
pub fn all() -> Vec<BugCase> {
    let mut cases = Vec::new();

    // ---- code bugs (1–6) -------------------------------------------------
    cases.push(BugCase {
        index: 1,
        name: "Routing misconfiguration",
        kind: BugKind::Code,
        workload: eipgw_with_port_intent("bug1-routing-misconfig", EIPGW_RULES_BAD_ROUTE),
        fault: Fault::None,
        paper: [true, false, false, false, true],
    });
    cases.push(BugCase {
        index: 2,
        name: "Unrestricted ACL rules",
        kind: BugKind::Code,
        workload: eipgw("bug2-unrestricted-acl", false, false, EIPGW_RULES_BAD_ACL),
        fault: Fault::None,
        paper: [true, false, false, false, true],
    });
    cases.push(BugCase {
        index: 3,
        name: "Parser wrong logic",
        kind: BugKind::Code,
        workload: crate::compile_pair(
            "bug3-parser-wrong-logic",
            // Transposed ether_type: IPv4 packets are never parsed as IPv4.
            &TINY.replace("0x0800 => parse_ipv4;", "0x0008 => parse_ipv4;"),
            "",
        ),
        fault: Fault::None,
        paper: [true, true, true, true, true],
    });
    cases.push(BugCase {
        index: 4,
        name: "Ingress wrong logic",
        kind: BugKind::Code,
        workload: crate::compile_pair(
            "bug4-ingress-wrong-logic",
            // Inverted validity test: IPv4 goes down the other-traffic arm.
            &TINY.replace(
                "if (hdr.ipv4.isValid()) {",
                "if (!hdr.ipv4.isValid()) {",
            ),
            "",
        ),
        fault: Fault::None,
        paper: [true, true, true, true, true],
    });
    cases.push(BugCase {
        index: 5,
        name: "Wrong deparser emit",
        kind: BugKind::Code,
        workload: crate::compile_pair(
            "bug5-wrong-deparser-emit",
            // The snap header is parsed but never emitted.
            &TINY.replace(
                "deparser { emit(ethernet); emit(snap); emit(ipv4); }",
                "deparser { emit(ethernet); emit(ipv4); }",
            ),
            "",
        ),
        fault: Fault::None,
        paper: [true, false, true, false, true],
    });
    cases.push(BugCase {
        index: 6,
        name: "Checksum fail-to-update",
        kind: BugKind::Code,
        workload: eipgw("bug6-checksum-fail-to-update", true, false, EIPGW_RULES),
        fault: Fault::None,
        paper: [true, false, false, false, false],
    });

    // ---- non-code bugs (7–16) --------------------------------------------
    cases.push(BugCase {
        index: 7,
        name: "p4c frontend bug 2147",
        kind: BugKind::NonCode,
        workload: crate::compile_pair("bug7-p4c-2147", TINY, ""),
        fault: Fault::WrongConstant {
            field: "hdr.ipv4.dscp".into(),
            xor_mask: 0x01,
        },
        paper: [true, true, false, true, false],
    });
    cases.push(BugCase {
        index: 8,
        name: "p4c frontend bug 2343",
        kind: BugKind::NonCode,
        workload: crate::compile_pair("bug8-p4c-2343", TINY, ""),
        // TINY's select arms genuinely overlap: 0x0800 matches both the
        // exact arm and the 0x0800/0xfc00 mask arm. Priority inversion
        // sends IPv4 packets down the snap parse path.
        fault: Fault::PriorityInverted,
        paper: [true, true, false, true, false],
    });
    cases.push(BugCase {
        index: 9,
        name: "bf-p4c backend bug 1",
        kind: BugKind::NonCode,
        workload: crate::compile_pair("bug9-bfp4c-1", SMALLX, ""),
        fault: Fault::SetValidDropped {
            header: "probe".into(),
        },
        paper: [true, false, false, true, false],
    });
    cases.push(BugCase {
        index: 10,
        name: "bf-p4c backend bug 3",
        kind: BugKind::NonCode,
        workload: crate::compile_pair("bug10-bfp4c-3", SMALLX, ""),
        fault: Fault::WrongArithComparison { width: 16 },
        paper: [true, false, false, true, false],
    });
    cases.push(BugCase {
        index: 11,
        name: "bf-p4c backend bug 6",
        kind: BugKind::NonCode,
        workload: crate::compile_pair("bug11-bfp4c-6", SMALLX, ""),
        fault: Fault::WrongAssignment {
            intended: "hdr.ipv4.src_addr".into(),
            actual: "hdr.ipv4.dst_addr".into(),
        },
        paper: [true, false, false, true, false],
    });
    cases.push(BugCase {
        index: 12,
        name: "bf-p4c backend bug A (incorrect arithmetic comparison)",
        kind: BugKind::NonCode,
        workload: eipgw("bug12-wrong-comparison", false, false, EIPGW_RULES),
        fault: Fault::WrongArithComparison { width: 8 },
        paper: [true, false, false, false, false],
    });
    cases.push(BugCase {
        index: 13,
        name: "bf-p4c backend bug B (incorrect assignment)",
        kind: BugKind::NonCode,
        workload: eipgw("bug13-wrong-assignment", false, false, EIPGW_RULES),
        fault: Fault::WrongAssignment {
            intended: "hdr.vxlan.vni".into(),
            actual: "hdr.vxlan.reserved".into(),
        },
        paper: [true, false, false, false, false],
    });
    cases.push(BugCase {
        index: 14,
        name: "bf-p4c backend bug C (setValid)",
        kind: BugKind::NonCode,
        workload: eipgw("bug14-setvalid", false, false, EIPGW_RULES),
        fault: Fault::SetValidDropped {
            header: "inner_ipv4".into(),
        },
        paper: [true, false, false, false, false],
    });
    cases.push(BugCase {
        index: 15,
        name: "Misuse of optimization pragmas",
        kind: BugKind::NonCode,
        workload: eipgw("bug15-pragma-overlap", false, false, EIPGW_RULES),
        fault: Fault::FieldOverlap {
            a: "hdr.ipv4.dst_addr".into(),
            b: "hdr.inner_ipv4.dst_addr".into(),
        },
        paper: [true, false, false, false, false],
    });
    cases.push(BugCase {
        index: 16,
        name: "Missing compilation flags",
        kind: BugKind::NonCode,
        workload: eipgw("bug16-missing-flags", false, false, EIPGW_RULES),
        fault: Fault::ChecksumNotUpdated,
        paper: [true, false, false, false, false],
    });

    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_cases_compile() {
        let cases = all();
        assert_eq!(cases.len(), 16);
        for (i, c) in cases.iter().enumerate() {
            assert_eq!(c.index, i + 1);
            assert!(c.paper[0], "Meissa detects every Table 2 bug");
        }
    }

    #[test]
    fn code_bugs_have_no_fault_and_vice_versa() {
        for c in all() {
            match c.kind {
                BugKind::Code => assert_eq!(c.fault, Fault::None, "bug {}", c.index),
                BugKind::NonCode => assert_ne!(c.fault, Fault::None, "bug {}", c.index),
            }
        }
    }

    #[test]
    fn matrix_matches_paper_totals() {
        // Column sums from Table 2: Meissa 16, p4pktgen 4, PTA 3,
        // Gauntlet 7, Aquila 5.
        let cases = all();
        let sums: Vec<usize> = (0..5)
            .map(|t| cases.iter().filter(|c| c.paper[t]).count())
            .collect();
        assert_eq!(sums, vec![16, 4, 3, 7, 5]);
    }

    #[test]
    fn correct_gateway_satisfies_its_intents() {
        // The non-buggy eipgw must pass a faithful test run end-to-end —
        // otherwise the corpus would report false positives.
        use meissa_core::Meissa;
        use meissa_dataplane::SwitchTarget;
        use meissa_driver::TestDriver;
        let w = eipgw("eipgw-clean", false, false, EIPGW_RULES);
        let mut run = Meissa::new().run(&w.program);
        assert!(!run.templates.is_empty());
        let driver = TestDriver::new(&w.program);
        let report = driver.run(&mut run, &SwitchTarget::new(&w.program));
        assert_eq!(report.failed(), 0, "{report}");
    }
}
