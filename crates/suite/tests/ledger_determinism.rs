//! The run ledger must be a write-only side channel, exactly like the
//! trace sink: gw-3 has to produce byte-identical templates and RunStats
//! whether `MEISSA_LEDGER` (here driven through the programmatic
//! `ledger::ledger_to`) is appending RunRecords or not. The ledger file
//! itself must hold valid, content-addressed, self-describing records —
//! and two identical-config runs must agree on every input-derived field
//! (program hash, rule-set hash, deterministic counters, coverage map).

use meissa_core::{Meissa, MeissaConfig};
use meissa_suite::gw::{gw, GwScale};
use meissa_testkit::json::Json;
use meissa_testkit::obs::ledger;

/// Renders one run as template strings plus a deterministic stats line
/// (wall times excluded) — the same digest `obs_determinism.rs` uses.
fn render(config: MeissaConfig) -> (Vec<String>, String) {
    let w = gw(3, GwScale { eips: 4 });
    let run = Meissa { config }.run(&w.program);
    let templates = run
        .templates
        .iter()
        .map(|t| {
            let path: Vec<String> = t.path.iter().map(|n| format!("{n:?}")).collect();
            let cs: Vec<String> = t
                .constraints
                .iter()
                .map(|&c| run.pool.display(c))
                .collect();
            format!("path={path:?} constraints={cs:?}")
        })
        .collect();
    let s = &run.stats;
    let stats = format!(
        "valid={} explored={} pruned={} smt={} rules={}/{} tables={}/{}",
        s.valid_paths,
        s.paths_explored,
        s.pruned,
        s.smt_checks,
        s.rules_hit,
        s.rules_total,
        s.tables_full,
        s.tables_total,
    );
    (templates, stats)
}

fn field_text(v: &Json, key: &str) -> String {
    v.get(key)
        .and_then(|f| f.as_str().ok())
        .unwrap_or_default()
        .to_string()
}

/// One test fn because the ledger sink is process-global.
#[test]
fn gw3_output_identical_with_ledger_on_and_off_and_records_agree() {
    let ledger_path = std::env::temp_dir().join(format!(
        "meissa_ledger_determinism_{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&ledger_path);
    let config = MeissaConfig {
        threads: 1,
        ..MeissaConfig::default()
    };

    ledger::ledger_off();
    let off = render(config.clone());

    ledger::ledger_to(&ledger_path);
    let on_a = render(config.clone());
    let on_b = render(config.clone());
    ledger::ledger_off();

    assert_eq!(off.1, on_a.1, "RunStats diverge with the ledger enabled");
    assert_eq!(off.0, on_a.0, "templates diverge with the ledger enabled");
    assert_eq!(on_a, on_b, "back-to-back ledgered runs disagree");

    // The file holds one self-contained record per ledgered run, each
    // with a content-hash id, and the two identical runs agree on every
    // input-derived field.
    let body = std::fs::read_to_string(&ledger_path).expect("ledger file written");
    let records: Vec<Json> = body
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| Json::parse(l).expect("ledger line parses as JSON"))
        .collect();
    assert_eq!(records.len(), 2, "one RunRecord per ledgered run");
    for r in &records {
        assert_eq!(field_text(r, "t"), "run_record");
        assert_eq!(field_text(r, "kind"), "engine.run");
        assert!(!field_text(r, "id").is_empty(), "record lacks a hash id");
        assert!(!field_text(r, "program_hash").is_empty());
        assert!(!field_text(r, "rule_set_hash").is_empty());
        assert!(r.get("counters").is_some(), "record lacks counters");
        assert!(r.get("coverage").is_some(), "record lacks a coverage map");
    }
    let (a, b) = (&records[0], &records[1]);
    assert_eq!(field_text(a, "program_hash"), field_text(b, "program_hash"));
    assert_eq!(
        field_text(a, "rule_set_hash"),
        field_text(b, "rule_set_hash")
    );
    assert_eq!(field_text(a, "config"), field_text(b, "config"));
    assert_eq!(
        a.get("coverage").map(|c| c.to_text()),
        b.get("coverage").map(|c| c.to_text()),
        "coverage maps diverge between identical runs"
    );
    // Counters match except wall-clock.
    let deterministic = ["smt_checks", "templates", "valid_paths", "paths_explored",
        "pruned", "rules_hit", "rules_total", "tables_full", "tables_total"];
    for name in deterministic {
        let get = |r: &Json| {
            r.get("counters")
                .and_then(|c| c.get(name))
                .and_then(|v| v.as_u128().ok())
        };
        assert_eq!(get(a), get(b), "counter {name} diverges between runs");
        assert!(get(a).is_some(), "counter {name} missing from record");
    }

    let _ = std::fs::remove_file(&ledger_path);
}
