//! Observability must be a write-only side channel: the gw-3 gateway
//! workload has to produce byte-identical templates and RunStats whether
//! a `MEISSA_TRACE` sink is attached or not (here driven through the
//! programmatic `obs::trace_to`, which is what the env var resolves to),
//! and at both `MEISSA_THREADS=1` and `=4`. If instrumentation ever
//! perturbs exploration order, solver counters, or template rendering,
//! this test is the tripwire.

use meissa_core::{Meissa, MeissaConfig};
use meissa_suite::gw::{gw, GwScale};
use meissa_testkit::obs;

/// Renders one run as template strings plus a stats line built only from
/// deterministic counters (wall times excluded). `with_solver` adds the
/// solver/SAT-engine tallies, which are sequence-dependent: they are
/// deterministic at one thread but legitimately vary with work-stealing
/// schedules, so the 4-thread comparison sticks to the exec-level set.
fn render(config: MeissaConfig, with_solver: bool) -> (Vec<String>, String) {
    let w = gw(3, GwScale { eips: 4 });
    let run = Meissa { config }.run(&w.program);
    let templates = run
        .templates
        .iter()
        .map(|t| {
            let path: Vec<String> = t.path.iter().map(|n| format!("{n:?}")).collect();
            let cs: Vec<String> = t
                .constraints
                .iter()
                .map(|&c| run.pool.display(c))
                .collect();
            let fv: Vec<String> = t
                .final_values
                .iter()
                .map(|&(f, v)| format!("{f:?}={}", run.pool.display(v)))
                .collect();
            format!("path={path:?} constraints={cs:?} finals={fv:?}")
        })
        .collect();
    let s = &run.stats;
    let mut stats = format!(
        "valid={} before={} after={} explored={} pruned={} smt={} \
         cache={}/{} batched={}/{}",
        s.valid_paths,
        s.paths_before,
        s.paths_after,
        s.paths_explored,
        s.pruned,
        s.smt_checks,
        s.cache_hits,
        s.cache_probes,
        s.arm_batches,
        s.batched_probes,
    );
    if with_solver {
        stats.push_str(&format!(
            " solver={:?} sat=solves:{},props:{},conflicts:{},decisions:{}",
            s.solver, s.sat.solves, s.sat.propagations, s.sat.conflicts, s.sat.decisions
        ));
    }
    (templates, stats)
}

fn config(threads: usize) -> MeissaConfig {
    MeissaConfig {
        threads,
        // Disable worker right-sizing so threads=4 really forks workers on
        // this (small) workload.
        min_paths_per_worker: 0,
        ..MeissaConfig::default()
    }
}

/// One test fn (not several) because the obs sink is process-global: the
/// off-runs must not race a sibling test's trace_to.
#[test]
fn gw3_output_identical_with_tracing_on_and_off_across_threads() {
    let trace_path = std::env::temp_dir().join(format!(
        "meissa_obs_determinism_{}.jsonl",
        std::process::id()
    ));

    for threads in [1usize, 4] {
        let with_solver = threads == 1;
        obs::trace_off();
        let off = render(config(threads), with_solver);

        obs::trace_to(&trace_path);
        let on = render(config(threads), with_solver);
        let _ = obs::flush_trace();
        obs::trace_off();

        assert_eq!(
            off.1, on.1,
            "RunStats diverge with tracing on at threads={threads}"
        );
        assert_eq!(
            off.0.len(),
            on.0.len(),
            "template count diverges with tracing on at threads={threads}"
        );
        for (i, (a, b)) in off.0.iter().zip(&on.0).enumerate() {
            assert_eq!(
                a, b,
                "template {i} diverges with tracing on at threads={threads}"
            );
        }

        // The traced run must actually have produced a trace — and with
        // right-sizing disabled, the 4-thread run must have forked real
        // workers whose spans survived the join (the park-on-thread-exit
        // handoff in testkit::obs).
        let body = std::fs::read_to_string(&trace_path).expect("trace file written");
        assert!(
            body.lines().any(|l| l.contains("engine.run")),
            "trace at threads={threads} lacks an engine.run span"
        );
        if threads > 1 {
            assert!(
                body.lines().any(|l| l.contains("parallel.worker")),
                "trace at threads={threads} lacks parallel.worker spans"
            );
        }
    }

    let _ = std::fs::remove_file(&trace_path);
}
