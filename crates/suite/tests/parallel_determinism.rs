//! Parallel-exploration determinism: for every thread count the engine must
//! produce the *same* template sequence — same paths, in the same order,
//! with the same constraints and output values — and the same headline
//! statistics as the sequential engine. The comparison renders terms two
//! ways: via [`meissa_smt::TermPool::canonical_key`] (pool-independent
//! structural identity — worker pools intern in schedule-dependent order,
//! so raw `TermId`s are not comparable across runs) *and* via the pretty
//! `display` rendering, which follows stored operand order and therefore
//! catches operand-order flips that canonical keys normalize away.

use meissa_core::{Meissa, MeissaConfig};
use meissa_suite as suite;

/// A pool-independent fingerprint of one engine run: per template the node
/// path, canonically-rendered constraints, and canonically-rendered final
/// values, plus the path-counting statistics the figures report.
fn fingerprint(run: &meissa_core::engine::RunOutput) -> (Vec<String>, String) {
    let templates = run
        .templates
        .iter()
        .map(|t| {
            let path: Vec<String> = t.path.iter().map(|n| format!("{n:?}")).collect();
            let cs: Vec<String> = t
                .constraints
                .iter()
                .map(|&c| format!("{}|{}", run.pool.canonical_key(c), run.pool.display(c)))
                .collect();
            let fv: Vec<String> = t
                .final_values
                .iter()
                .map(|&(f, v)| {
                    format!(
                        "{f:?}={}|{}",
                        run.pool.canonical_key(v),
                        run.pool.display(v)
                    )
                })
                .collect();
            format!("path={path:?} constraints={cs:?} finals={fv:?}")
        })
        .collect();
    let stats = format!(
        "valid={} before={} after={} checks={} probes={}",
        run.stats.valid_paths,
        run.stats.paths_before,
        run.stats.paths_after,
        // Probe-level counters are part of the invariant: a probe is issued
        // per arm per path visit regardless of which worker owns the
        // subtree, so `smt_checks`/`cache_probes` must not move with the
        // thread count. Solver-*internal* counters (the cache-hit /
        // fast-path / model-reuse / SAT-engine split) are deliberately
        // excluded here: work stealing donates subtrees to workers with
        // cold verdict caches, so which probes short-circuit before the
        // engine depends on the (timing-dependent) partition. The summary
        // engine's job-level counters, which *are* partition-independent,
        // get their own assertion below.
        run.stats.smt_checks,
        run.stats.cache_probes,
    );
    (templates, stats)
}

fn assert_thread_invariant(name: &str, config_for: impl Fn(usize) -> MeissaConfig) {
    let baseline = Meissa {
        config: config_for(1),
    }
    .run_output(name);
    for threads in [2usize, 4, 8] {
        let got = Meissa {
            config: config_for(threads),
        }
        .run_output(name);
        assert_eq!(
            baseline.1, got.1,
            "{name}: stats diverge at {threads} threads"
        );
        assert_eq!(
            baseline.0.len(),
            got.0.len(),
            "{name}: template count diverges at {threads} threads"
        );
        for (i, (a, b)) in baseline.0.iter().zip(&got.0).enumerate() {
            assert_eq!(a, b, "{name}: template {i} diverges at {threads} threads");
        }
    }
}

/// Helper so the closure-driven test reads naturally: run the named corpus
/// workload under this engine and fingerprint the output.
trait RunByName {
    fn run_output(&self, name: &str) -> (Vec<String>, String);
}

impl RunByName for Meissa {
    fn run_output(&self, name: &str) -> (Vec<String>, String) {
        let w = workload(name);
        let run = self.run(&w.program);
        fingerprint(&run)
    }
}

fn workload(name: &str) -> suite::Workload {
    match name {
        "router" => suite::router(6, 3),
        "mtag" => suite::mtag(4, 5),
        "acl" => suite::acl(4, 7),
        "switch_lite" => suite::switch_lite(3, 9),
        "gw2" => suite::gw::gw(2, suite::gw::GwScale { eips: 4 }),
        other => panic!("unknown workload {other}"),
    }
}

#[test]
fn corpus_summary_engine_is_thread_count_invariant() {
    for name in ["router", "mtag", "acl", "switch_lite"] {
        assert_thread_invariant(name, |threads| MeissaConfig {
            threads,
            // Disable worker right-sizing: these workloads are small, and
            // the point here is to exercise the parallel machinery itself.
            min_paths_per_worker: 0,
            ..MeissaConfig::default()
        });
    }
}

#[test]
fn corpus_plain_dfs_is_thread_count_invariant() {
    // code_summary off: the work-stealing DFS itself carries the whole
    // search, so this exercises donation + deterministic merge directly.
    for name in ["router", "mtag"] {
        assert_thread_invariant(name, |threads| MeissaConfig {
            code_summary: false,
            threads,
            min_paths_per_worker: 0,
            ..MeissaConfig::default()
        });
    }
}

#[test]
fn multi_pipeline_gateway_is_thread_count_invariant() {
    // gw level 2 has multiple chained pipelines: exercises the batched
    // summary path (level planning, group-search batch, extension batch).
    assert_thread_invariant("gw2", |threads| MeissaConfig {
        threads,
        min_paths_per_worker: 0,
        ..MeissaConfig::default()
    });
}

#[test]
fn summary_solver_counters_are_thread_count_invariant() {
    // Regression test for the sat_engine_calls drift the scaling trace
    // surfaced (5121 sequential vs 5217 at t≥2 on gw-3-r8/summary): the
    // sequential summary loop let pipeline N+1 warm-start from pipeline N's
    // verdict discoveries via the shared main cache, while batched workers
    // started cold. The summary engine now routes through the batched path
    // at every thread count, with workers layered over a read-only snapshot
    // of the main cache and their discoveries merged back in job order — so
    // per-pipeline solver effort is a function of (job, snapshot) alone.
    // Default `min_paths_per_worker` on purpose: this is the production
    // configuration, worker right-sizing included.
    let w = workload("gw2");
    let base = Meissa {
        config: MeissaConfig {
            threads: 1,
            ..MeissaConfig::default()
        },
    }
    .run(&w.program);
    for threads in [2usize, 4, 8] {
        let got = Meissa {
            config: MeissaConfig {
                threads,
                ..MeissaConfig::default()
            },
        }
        .run(&w.program);
        assert_eq!(
            base.stats.smt_checks, got.stats.smt_checks,
            "smt_checks drifts at {threads} threads"
        );
        assert_eq!(
            base.stats.solver.sat_engine_calls, got.stats.solver.sat_engine_calls,
            "sat_engine_calls drifts at {threads} threads"
        );
        assert_eq!(
            base.stats.cache_probes, got.stats.cache_probes,
            "cache_probes drifts at {threads} threads"
        );
    }
}
