//! Corpus-level wire/in-process equivalence, and transport-fault immunity.
//!
//! These are the ISSUE's acceptance checks (and the ci.sh loopback smoke
//! test): with transport faults off, the wire driver's `TestReport` is
//! verdict-for-verdict identical to the in-process driver's on the gateway
//! corpus — zero spurious failures on a faithful target — and with
//! transport faults on, the retry/dedup/drain machinery never lets a lossy
//! transport masquerade as a data plane bug.

use meissa_core::Meissa;
use meissa_dataplane::SwitchTarget;
use meissa_driver::{TestDriver, TestReport, Verdict};
use meissa_netdriver::{Agent, TransportFaults, WireDriver};
use meissa_suite::gw::{gw, GwScale};
use std::time::Duration;

fn verdicts(report: &TestReport) -> Vec<(usize, Verdict)> {
    report
        .cases
        .iter()
        .map(|c| (c.template_id, c.verdict.clone()))
        .collect()
}

#[test]
fn gw3_loopback_smoke_matches_in_process_with_zero_failures() {
    let w = gw(3, GwScale { eips: 4 });
    let program = &w.program;

    let agent = Agent::spawn(Some(SwitchTarget::new(program)), None).unwrap();
    let mut run = Meissa::new().run(program);
    let wire = WireDriver::new(program, agent.addr())
        .with_connections(4)
        .run(&mut run)
        .unwrap();
    agent.shutdown();

    assert_eq!(
        wire.failed(),
        0,
        "faithful gw-3 over loopback must be clean: {wire}"
    );
    assert!(wire.passed() > 0, "smoke run exercised no cases");

    let mut run = Meissa::new().run(program);
    let local = TestDriver::new(program).run(&mut run, &SwitchTarget::new(program));
    assert_eq!(
        verdicts(&wire),
        verdicts(&local),
        "wire and in-process reports diverge on gw-3"
    );
    assert!(wire.latency_p99() >= wire.latency_p50());
}

#[test]
fn transport_faults_are_not_bugs_on_the_gateway_corpus() {
    let w = gw(2, GwScale { eips: 4 });
    let program = &w.program;

    // 4% drop/dup/delay/truncate each, across 2 connections.
    let agent = Agent::spawn(
        Some(SwitchTarget::new(program)),
        Some(TransportFaults::uniform(0x5EED, 40)),
    )
    .unwrap();
    let mut run = Meissa::new().run(program);
    let wire = WireDriver::new(program, agent.addr())
        .with_connections(2)
        .with_retries(Duration::from_millis(50), 10, Duration::from_millis(10))
        .run(&mut run)
        .unwrap();
    agent.shutdown();

    assert_eq!(
        wire.failed(),
        0,
        "transport faults surfaced as bug verdicts: {wire}"
    );
    assert!(wire.passed() > 0);
}
