//! Property tests for the BDD predicate backend.
//!
//! 1. Verdict agreement: on randomly generated *match-field-only*
//!    constraint sets — conjunctions of boolean combinations of
//!    `field == const` / `field < const` atoms, optionally over bit
//!    slices — the hermetic BDD engine must return exactly the verdict the
//!    incremental SMT solver returns. This is the soundness contract the
//!    `auto` router rests on.
//! 2. End-to-end: on random-rule-set corpus programs (the §5.1 randrules
//!    generator), a run answered on the BDD-routing backend must produce
//!    the same templates as the smt-only run.

use meissa_core::{BackendKind, Meissa, MeissaConfig};
use meissa_smt::bdd::BddEngine;
use meissa_smt::{CheckResult, Solver, TermId, TermPool};
use meissa_testkit::prop::{self, G};
use meissa_testkit::prop_assert;
use meissa_num::Bv;

/// Draws one match-field-only atom over the given variables:
/// `slice ⋈ const` with ⋈ ∈ {==, <}, possibly wrapped in not/or/and.
fn gen_atom(g: &mut G, pool: &mut TermPool, vars: &[(TermId, u16)]) -> TermId {
    let (var, width) = vars[g.index(vars.len())];
    // Operand: the whole field or a sub-slice of it.
    let (lhs, w) = if width > 1 && g.bool() {
        let lo = g.index(width as usize) as u16;
        let len = 1 + g.index((width - lo) as usize) as u16;
        if lo == 0 && len == width {
            (var, width)
        } else {
            (pool.extract(var, lo, len), len)
        }
    } else {
        (var, width)
    };
    let c = pool.bv_const(Bv::new(w, g.bits(w)));
    // Both operand orders are in the accepted class.
    let atom = match (g.index(2), g.bool()) {
        (0, true) => pool.eq(lhs, c),
        (0, false) => pool.eq(c, lhs),
        (_, true) => pool.ult(lhs, c),
        (_, false) => pool.ult(c, lhs),
    };
    if g.bool() {
        pool.not(atom)
    } else {
        atom
    }
}

/// Draws a small boolean combination of atoms.
fn gen_conjunct(g: &mut G, pool: &mut TermPool, vars: &[(TermId, u16)]) -> TermId {
    let a = gen_atom(g, pool, vars);
    match g.index(3) {
        0 => a,
        1 => {
            let b = gen_atom(g, pool, vars);
            pool.or(a, b)
        }
        _ => {
            let b = gen_atom(g, pool, vars);
            pool.and(a, b)
        }
    }
}

#[test]
fn bdd_and_smt_agree_on_random_match_field_sets() {
    prop::check(96, |g| {
        let mut pool = TermPool::new();
        let vars: Vec<(TermId, u16)> = [("dstIP", 16u16), ("port", 9), ("vlan", 12), ("flag", 1)]
            .iter()
            .map(|&(n, w)| (pool.var(n, w), w))
            .collect();
        let n = g.len(1, 6);
        let set: Vec<TermId> = (0..n).map(|_| gen_conjunct(g, &mut pool, &vars)).collect();

        let mut engine = BddEngine::new();
        for &c in &set {
            prop_assert!(
                engine.accepts(&pool, c),
                "generator strayed outside the match-field-only class: {}",
                pool.display(c)
            );
        }
        let bdd_sat = engine.conj_sat(&pool, &[&set]);

        let mut solver = Solver::new();
        solver.push();
        for &c in &set {
            solver.assert_term(&mut pool, c);
        }
        let smt_sat = solver.check(&mut pool) == CheckResult::Sat;

        prop_assert!(
            bdd_sat == smt_sat,
            "verdicts diverge (bdd={bdd_sat} smt={smt_sat}) on {:?}",
            set.iter().map(|&c| pool.display(c)).collect::<Vec<_>>()
        );
        Ok(())
    });
}

#[test]
fn randrules_programs_produce_identical_templates_on_both_backends() {
    // Smaller case count: each case is a full engine run. The rule seed and
    // corpus program vary per case, so drifts anywhere in the translated
    // constraint space get a chance to surface.
    prop::check(8, |g| {
        let rules = 2 + g.index(3);
        let seed = g.u64();
        let w = match g.index(3) {
            0 => meissa_suite::router(rules, seed),
            1 => meissa_suite::mtag(rules, seed),
            _ => meissa_suite::acl(rules, seed),
        };
        let run_with = |backend: BackendKind| {
            let run = Meissa {
                config: MeissaConfig {
                    backend,
                    threads: 1,
                    ..MeissaConfig::default()
                },
            }
            .run(&w.program);
            let fp: Vec<String> = run
                .templates
                .iter()
                .map(|t| {
                    let cs: Vec<String> = t
                        .constraints
                        .iter()
                        .map(|&c| run.pool.canonical_key(c))
                        .collect();
                    format!("{:?}|{cs:?}", t.path)
                })
                .collect();
            (fp, run.stats.smt_checks, run.stats.cache_probes)
        };
        let smt = run_with(BackendKind::Smt);
        let bdd = run_with(BackendKind::Bdd);
        prop_assert!(
            smt == bdd,
            "{}: smt and bdd backends diverge (rules={rules} seed={seed})",
            w.name
        );
        Ok(())
    });
}
