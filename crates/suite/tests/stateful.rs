//! Stateful sequence testing, corpus-level acceptance:
//!
//! * k = 1 must degenerate to the single-packet engine **byte-for-byte**
//!   on the gw-3 goldens — same templates (paths, constraints, final
//!   values) and same `RunStats` — at 1 and 4 threads.
//! * Both stateful example programs' seeded state-dependent bugs are
//!   *missed* at k = 1, *caught* at k = 2, and the in-process and wire
//!   drivers agree verdict-for-verdict.
//! * Sequence exploration is deterministic across thread counts.

use meissa_core::{Meissa, MeissaConfig, RunStats, StatefulRunOutput};
use meissa_dataplane::{Fault, SwitchTarget};
use meissa_driver::{TestDriver, TestReport, Verdict};
use meissa_netdriver::{Agent, WireDriver};
use meissa_suite as suite;
use meissa_suite::gw::{gw, GwScale};

fn engine(k: usize, threads: usize) -> Meissa {
    Meissa {
        config: MeissaConfig {
            k_packets: k,
            threads,
            // Disable worker right-sizing so multi-thread runs exercise the
            // parallel machinery even on small workloads.
            min_paths_per_worker: 0,
            ..MeissaConfig::default()
        },
    }
}

/// Pool-independent canonical rendering of one template, shared by the
/// single-packet and sequence fingerprints (the same scheme as
/// `parallel_determinism.rs`).
fn template_line(
    pool: &meissa_smt::TermPool,
    t: &meissa_core::TestTemplate,
) -> String {
    let path: Vec<String> = t.path.iter().map(|n| format!("{n:?}")).collect();
    let cs: Vec<String> = t
        .constraints
        .iter()
        .map(|&c| format!("{}|{}", pool.canonical_key(c), pool.display(c)))
        .collect();
    let fv: Vec<String> = t
        .final_values
        .iter()
        .map(|&(f, v)| format!("{f:?}={}|{}", pool.canonical_key(v), pool.display(v)))
        .collect();
    format!("path={path:?} constraints={cs:?} finals={fv:?}")
}

/// The partition-independent slice of [`RunStats`]: probe- and path-level
/// counters that must not move between the single-packet and k=1 sequence
/// paths (solver-internal cache splits are timing-dependent under work
/// stealing, so they are excluded — as in `parallel_determinism.rs`).
fn stats_line(s: &RunStats) -> String {
    format!(
        "checks={} before={} after={} valid={} explored={} pruned={} probes={}",
        s.smt_checks,
        s.paths_before,
        s.paths_after,
        s.valid_paths,
        s.paths_explored,
        s.pruned,
        s.cache_probes,
    )
}

fn seq_fingerprint(run: &StatefulRunOutput) -> Vec<String> {
    run.sequences
        .iter()
        .map(|s| {
            format!(
                "id={} k={} packet_paths={:?} {}",
                s.id,
                s.k,
                s.packet_paths,
                template_line(&run.pool, &s.template)
            )
        })
        .collect()
}

#[test]
fn k1_sequences_match_single_packet_byte_for_byte_on_gw3() {
    let w = gw(3, GwScale { eips: 8 });
    for threads in [1usize, 4] {
        let single = engine(1, threads).run(&w.program);
        let seq = engine(1, threads).run_sequences(&w.program);
        assert_eq!(seq.k, 1);

        // Golden template count for gw-3/r8 (the bench golden).
        assert_eq!(single.templates.len(), 253, "gw-3 r8 golden drifted");
        assert_eq!(seq.sequences.len(), single.templates.len());

        for (s, t) in seq.sequences.iter().zip(&single.templates) {
            assert_eq!(s.id, t.id);
            assert_eq!(
                s.packet_paths,
                vec![t.path.clone()],
                "k=1 sequence path must be the single-packet path"
            );
            assert_eq!(
                template_line(&seq.pool, &s.template),
                template_line(&single.pool, t),
                "k=1 template {} diverges at {threads} threads",
                t.id
            );
        }
        assert_eq!(
            stats_line(&seq.stats),
            stats_line(&single.stats),
            "k=1 RunStats diverge at {threads} threads"
        );
    }
}

fn verdicts(report: &TestReport) -> Vec<(usize, Verdict)> {
    report
        .cases
        .iter()
        .map(|c| (c.template_id, c.verdict.clone()))
        .collect()
}

/// The shared seeded-bug acceptance check: `fault` is invisible to k=1
/// testing, caught by k=2 sequences, and the wire driver agrees with the
/// in-process driver verdict-for-verdict.
fn assert_seeded_bug_needs_sequences(w: &suite::Workload, fault: Fault) {
    let program = &w.program;
    let driver = TestDriver::new(program);

    // Faithful target: clean at k=2 (no false alarms from sequences).
    let faithful = SwitchTarget::new(program);
    let mut run = engine(2, 1).run_sequences(program);
    assert!(
        !run.sequences.is_empty(),
        "{}: no sequence templates generated",
        w.name
    );
    let report = driver.run_sequences(&mut run, &faithful);
    assert!(
        !report.found_bug(),
        "{}: faithful target failed sequence testing:\n{report}",
        w.name
    );

    // k=1 cannot see the state-dependent fault.
    let buggy = SwitchTarget::with_fault(program, fault.clone());
    let mut run = engine(1, 1).run_sequences(program);
    let report = driver.run_sequences(&mut run, &buggy);
    assert!(
        !report.found_bug(),
        "{}: k=1 unexpectedly caught the seeded bug:\n{report}",
        w.name
    );

    // k=2 catches it in-process…
    let mut run = engine(2, 1).run_sequences(program);
    let in_process = driver.run_sequences(&mut run, &buggy);
    assert!(
        in_process.found_bug(),
        "{}: k=2 missed the seeded bug:\n{in_process}",
        w.name
    );

    // …and over the wire, verdict-for-verdict.
    let agent = Agent::spawn(Some(SwitchTarget::with_fault(program, fault)), None).unwrap();
    let mut run = engine(2, 1).run_sequences(program);
    let wire = WireDriver::new(program, agent.addr())
        .run_sequences(&mut run)
        .unwrap();
    agent.shutdown();
    assert!(wire.found_bug(), "{}: wire driver missed the bug", w.name);
    assert_eq!(
        verdicts(&in_process),
        verdicts(&wire),
        "{}: wire and in-process drivers disagree",
        w.name
    );
}

#[test]
fn firewall_seeded_bug_needs_k2_and_wire_agrees() {
    assert_seeded_bug_needs_sequences(
        &suite::stateful_firewall(),
        Fault::WrongConstant {
            field: "REG:seen-POS:0".into(),
            xor_mask: 1,
        },
    );
}

#[test]
fn token_bucket_seeded_bug_needs_k2_and_wire_agrees() {
    assert_seeded_bug_needs_sequences(
        &suite::token_bucket(),
        Fault::WrongAssignment {
            intended: "REG:used-POS:0".into(),
            actual: "meta.scratch".into(),
        },
    );
}

#[test]
fn sequence_exploration_is_thread_count_invariant() {
    for w in [suite::stateful_firewall(), suite::token_bucket()] {
        for k in [2usize, 3] {
            let baseline = engine(k, 1).run_sequences(&w.program);
            let base_fp = seq_fingerprint(&baseline);
            let base_stats = stats_line(&baseline.stats);
            for threads in [2usize, 4] {
                let got = engine(k, threads).run_sequences(&w.program);
                assert_eq!(
                    base_stats,
                    stats_line(&got.stats),
                    "{} k={k}: stats diverge at {threads} threads",
                    w.name
                );
                assert_eq!(
                    base_fp,
                    seq_fingerprint(&got),
                    "{} k={k}: sequences diverge at {threads} threads",
                    w.name
                );
            }
        }
    }
}
