//! The corpus must be lint-clean (no dead rules, no orphan declarations) —
//! a guard against the generators drifting into producing meaningless
//! workloads whose "coverage" is a pile of unreachable arms.

use meissa_lang::{lint, parse_program, parse_rules, Lint};
use meissa_suite::{gw, programs, randrules};

#[test]
fn open_source_sources_have_no_structural_lints() {
    for (name, src) in [
        ("router", programs::ROUTER),
        ("acl", programs::ACL),
        ("switch_lite", programs::SWITCH_LITE),
    ] {
        let prog = parse_program(src).unwrap();
        let rules = randrules::generate_rules(&prog, 4, 1);
        let lints = lint(&prog, &rules);
        let structural: Vec<&Lint> = lints
            .iter()
            .filter(|l| {
                matches!(
                    l,
                    Lint::UnusedTable(_)
                        | Lint::UnusedControl(_)
                        | Lint::UnusedParser(_)
                        | Lint::EmptyTable(_)
                        | Lint::NeverValidHeader(_)
                )
            })
            .collect();
        assert!(structural.is_empty(), "{name}: {structural:?}");
    }
}

#[test]
fn gw_generators_emit_no_dead_rules() {
    for level in 1..=4u8 {
        let src = gw::gw_source(level);
        let rules_text = gw::gw_rules(level, gw::rule_set(level));
        let prog = parse_program(&src).unwrap();
        let rules = parse_rules(&rules_text).unwrap();
        let lints = lint(&prog, &rules);
        let dead: Vec<&Lint> = lints
            .iter()
            .filter(|l| matches!(l, Lint::ShadowedRule { .. }))
            .collect();
        assert!(dead.is_empty(), "gw-{level}: {dead:?}");
        let empty: Vec<&Lint> = lints
            .iter()
            .filter(|l| matches!(l, Lint::EmptyTable(_)))
            .collect();
        assert!(empty.is_empty(), "gw-{level}: {empty:?}");
    }
}

#[test]
fn bug2_unrestricted_acl_is_flagged_by_the_linter() {
    // The §6 workflow: linting would have caught the bad ACL config before
    // any switch time (the broad permit shadows the deny).
    let cases = meissa_suite::bugs::all();
    let bug2 = cases.iter().find(|c| c.index == 2).unwrap();
    let lints = lint(
        &bug2.workload.program.source,
        &rules_of(&bug2.workload.program),
    );
    assert!(
        lints
            .iter()
            .any(|l| matches!(l, Lint::ShadowedRule { table, .. } if table == "acl_filter")),
        "{lints:?}"
    );
}

/// Reconstructs the rule set of a compiled program for lint purposes by
/// re-parsing the corpus text is not possible here; instead lint the clean
/// gateway's rules against the bad-ACL variant via the bug corpus. The bug
/// corpus compiles rules into the CFG, so rebuild the rule set from the
/// known corpus constant.
fn rules_of(_p: &meissa_lang::CompiledProgram) -> meissa_lang::RuleSet {
    meissa_lang::parse_rules(
        r#"
        rules acl_filter {
          0x00000000 &&& 0x00000000 => noop();
          0xc0a80100 &&& 0xffffff00 => acl_deny();
        }
        rules eip_lookup {
          10.0.0.1 => eip_hit(1, 1);
        }
        rules vni_underlay {
          1 => encap_to(0x0b000001);
        }
    "#,
    )
    .unwrap()
}
