//! Batched branch probing must be invisible in the output: the gw-3
//! gateway workload has to produce byte-identical templates — same paths,
//! same constraints, same final values, rendered the same way — whether
//! sibling arms are probed through `check_under` batches or one by one,
//! and at both `MEISSA_THREADS=1` and `=4` (the env var feeds
//! `MeissaConfig::threads`, which is what we set directly here).

use meissa_core::{Meissa, MeissaConfig};
use meissa_suite::gw::{gw, GwScale};

/// Renders one run as a list of template strings plus a stats line. The
/// rendering follows stored operand order, so it catches any divergence a
/// canonical form would normalize away.
fn render(config: MeissaConfig) -> (Vec<String>, String) {
    let w = gw(3, GwScale { eips: 4 });
    let run = Meissa { config }.run(&w.program);
    let templates = run
        .templates
        .iter()
        .map(|t| {
            let path: Vec<String> = t.path.iter().map(|n| format!("{n:?}")).collect();
            let cs: Vec<String> = t
                .constraints
                .iter()
                .map(|&c| run.pool.display(c))
                .collect();
            let fv: Vec<String> = t
                .final_values
                .iter()
                .map(|&(f, v)| format!("{f:?}={}", run.pool.display(v)))
                .collect();
            format!("path={path:?} constraints={cs:?} finals={fv:?}")
        })
        .collect();
    let stats = format!(
        "valid={} before={} after={} smt={}",
        run.stats.valid_paths, run.stats.paths_before, run.stats.paths_after, run.stats.smt_checks
    );
    (templates, stats)
}

fn config(batched: bool, threads: usize) -> MeissaConfig {
    MeissaConfig {
        batched_probing: batched,
        threads,
        // Disable worker right-sizing so threads=4 really forks workers on
        // this (small) workload.
        min_paths_per_worker: 0,
        ..MeissaConfig::default()
    }
}

#[test]
fn gw3_templates_identical_with_batching_on_off_across_threads() {
    let baseline = render(config(true, 1));
    for (batched, threads) in [(true, 4), (false, 1), (false, 4)] {
        let got = render(config(batched, threads));
        assert_eq!(
            baseline.1, got.1,
            "stats diverge at batched={batched} threads={threads}"
        );
        assert_eq!(
            baseline.0.len(),
            got.0.len(),
            "template count diverges at batched={batched} threads={threads}"
        );
        for (i, (a, b)) in baseline.0.iter().zip(&got.0).enumerate() {
            assert_eq!(
                a, b,
                "template {i} diverges at batched={batched} threads={threads}"
            );
        }
    }
}

#[test]
fn gw3_dfs_templates_identical_with_batching_on_off() {
    // Plain DFS (code_summary off): the walker probes arms directly, so
    // this exercises the exec-layer batching path end to end.
    let base = render(MeissaConfig {
        code_summary: false,
        ..config(true, 1)
    });
    let unbatched = render(MeissaConfig {
        code_summary: false,
        ..config(false, 1)
    });
    assert_eq!(base, unbatched, "DFS templates diverge with batching off");
}
