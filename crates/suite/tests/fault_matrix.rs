//! Fault matrix: every `dataplane::Fault` variant, exercised through both
//! the in-process driver and the loopback wire driver, must be detected —
//! and localized — identically. The sixteen Table 2 bug cases are the
//! vehicle: cases 1–6 are code bugs (faithful backend, buggy source) and
//! 7–16 inject every backend fault variant at least once.

use meissa_core::Meissa;
use meissa_dataplane::SwitchTarget;
use meissa_driver::{TestDriver, TestReport, Verdict};
use meissa_netdriver::{Agent, WireDriver};
use meissa_suite::bugs;
use std::collections::BTreeSet;

/// Verdicts with template ids, for cross-driver comparison.
fn verdicts(report: &TestReport) -> Vec<(usize, Verdict)> {
    report
        .cases
        .iter()
        .map(|c| (c.template_id, c.verdict.clone()))
        .collect()
}

/// Template ids of non-pass, non-skip cases (where the bug localizes).
fn failing_templates(report: &TestReport) -> Vec<usize> {
    report
        .cases
        .iter()
        .filter(|c| !matches!(c.verdict, Verdict::Pass | Verdict::Skipped { .. }))
        .map(|c| c.template_id)
        .collect()
}

#[test]
fn every_fault_variant_detected_identically_over_the_wire() {
    let mut covered = BTreeSet::new();
    for case in bugs::all() {
        let program = &case.workload.program;
        covered.insert(case.fault.name());

        let mut run = Meissa::new().run(program);
        let local = TestDriver::new(program)
            .run(&mut run, &SwitchTarget::with_fault(program, case.fault.clone()));

        let agent = Agent::spawn(
            Some(SwitchTarget::with_fault(program, case.fault.clone())),
            None,
        )
        .unwrap();
        // The engine is deterministic, so a fresh run plans the same cases
        // the in-process driver saw (and the pool mutations of one driver's
        // instantiation never leak into the other's).
        let mut run = Meissa::new().run(program);
        let wire = WireDriver::new(program, agent.addr())
            .run(&mut run)
            .unwrap();
        agent.shutdown();

        assert_eq!(
            verdicts(&local),
            verdicts(&wire),
            "bug {} ({}): wire and in-process drivers disagree",
            case.index,
            case.name
        );
        assert_eq!(
            failing_templates(&local),
            failing_templates(&wire),
            "bug {} ({}): localization diverges across transports",
            case.index,
            case.name
        );
        assert_eq!(wire.target_label, case.fault.name());
    }
    // The corpus must exercise the whole fault surface (plus the faithful
    // backend, which the code bugs run against).
    let expected: BTreeSet<&str> = [
        "none",
        "setValid-dropped",
        "field-overlap",
        "wrong-arith-comparison",
        "wrong-assignment",
        "checksum-not-updated",
        "wrong-constant",
        "priority-inverted",
    ]
    .into_iter()
    .collect();
    assert_eq!(covered, expected, "corpus fault coverage changed");
}
