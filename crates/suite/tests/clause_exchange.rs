//! Clause-exchange correctness: sharing learned clauses between worker
//! solvers must be *invisible* in every output. Two angles:
//!
//! 1. End to end, the engine must produce byte-identical templates and
//!    identical probe counts with the exchange enabled (the default) and
//!    disabled (`MEISSA_CLAUSE_SHARE=off`) — a shared lemma may only save
//!    SAT-engine work, never steer the search.
//! 2. At the solver level, a clause imported from a donor must never flip
//!    a verdict: every probe is cross-checked against a fresh solver that
//!    never saw the import.

use meissa_core::{Meissa, MeissaConfig};
use meissa_num::Bv;
use meissa_smt::{CheckResult, SharedClause, Solver, TermId, TermPool};
use meissa_suite as suite;

/// Pool-independent rendering of one run's template sequence (worker pools
/// intern in schedule-dependent order, so raw `TermId`s don't compare).
fn fingerprint(run: &meissa_core::engine::RunOutput) -> Vec<String> {
    run.templates
        .iter()
        .map(|t| {
            let path: Vec<String> = t.path.iter().map(|n| format!("{n:?}")).collect();
            let cs: Vec<String> = t
                .constraints
                .iter()
                .map(|&c| format!("{}|{}", run.pool.canonical_key(c), run.pool.display(c)))
                .collect();
            let fv: Vec<String> = t
                .final_values
                .iter()
                .map(|&(f, v)| format!("{f:?}={}", run.pool.canonical_key(v)))
                .collect();
            format!("path={path:?} constraints={cs:?} finals={fv:?}")
        })
        .collect()
}

/// The exchange toggle must not change templates or probe counts. Both
/// runs live in one test body because `MEISSA_CLAUSE_SHARE` is process
/// state — no other test in this binary reads it, so the two sequential
/// runs see exactly the value they set.
#[test]
fn sharing_toggle_yields_identical_templates() {
    let w = suite::gw::gw(2, suite::gw::GwScale { eips: 4 });
    let config = |threads| MeissaConfig {
        threads,
        // Force real workers even on a small host: the exchange only
        // exists at two or more workers.
        min_paths_per_worker: 0,
        ..MeissaConfig::default()
    };
    std::env::remove_var("MEISSA_CLAUSE_SHARE");
    let on = Meissa { config: config(4) }.run(&w.program);
    std::env::set_var("MEISSA_CLAUSE_SHARE", "off");
    let off = Meissa { config: config(4) }.run(&w.program);
    std::env::remove_var("MEISSA_CLAUSE_SHARE");

    assert_eq!(
        fingerprint(&on),
        fingerprint(&off),
        "clause sharing changed the template sequence"
    );
    assert_eq!(on.stats.valid_paths, off.stats.valid_paths);
    assert_eq!(on.stats.smt_checks, off.stats.smt_checks);
    assert_eq!(on.stats.cache_probes, off.stats.cache_probes);
}

fn probe(s: &mut Solver, pool: &mut TermPool, arm: TermId) -> CheckResult {
    s.push();
    s.assert_term(pool, arm);
    let r = s.check(pool);
    s.pop();
    r
}

/// Every verdict an importing solver gives must match a fresh solver that
/// never imported anything. The donor learns real conflict clauses from
/// the carry-chain bound (`x + y == 255` refutes `x ^ y != 255` only
/// after search), so the import is non-trivial.
#[test]
fn imported_clauses_preserve_every_verdict() {
    let mut pool = TermPool::new();
    let x = pool.var("x", 8);
    let y = pool.var("y", 8);
    let c255 = pool.bv_const(Bv::new(8, 255));
    let sum = pool.add(x, y);
    let bound = pool.eq(sum, c255);
    let xor = pool.bv_xor(x, y);
    let hard = pool.ne(xor, c255);

    let mut donor = Solver::new();
    donor.push();
    donor.assert_term(&mut pool, bound);
    donor.push();
    donor.assert_term(&mut pool, hard);
    assert_eq!(donor.check(&mut pool), CheckResult::Unsat);
    donor.pop();
    let exported = donor.export_portable(8);
    assert!(
        !exported.is_empty(),
        "refuting the carry-chain arm must yield portable lemmas"
    );

    let mut importer = Solver::new();
    importer.push();
    importer.assert_term(&mut pool, bound);
    let shared: Vec<SharedClause> = exported
        .iter()
        .map(|lits| SharedClause {
            source: 7,
            lits: lits.clone(),
        })
        .collect();
    let (imported, _deferred) = importer.import_portable(shared);
    assert!(imported > 0, "identically blasted terms must translate");

    // Probe arms spanning both verdicts: the refuted xor arm, satisfiable
    // and unsatisfiable point constraints, and slice constraints.
    let mut arms: Vec<TermId> = vec![hard];
    for k in 0..16u128 {
        let kx = pool.bv_const(Bv::new(8, (k * 31) & 0xff));
        arms.push(pool.eq(x, kx));
        let ky = pool.bv_const(Bv::new(8, (k * 7) & 0xff));
        arms.push(pool.ne(y, ky));
    }
    for &arm in &arms {
        let mut fresh = Solver::new();
        fresh.push();
        fresh.assert_term(&mut pool, bound);
        let want = probe(&mut fresh, &mut pool, arm);
        let got = probe(&mut importer, &mut pool, arm);
        assert_eq!(
            want,
            got,
            "imported lemmas changed the verdict of `{}`",
            pool.display(arm)
        );
    }
}
