//! Backend equivalence on the evaluation corpus: the predicate backend a
//! run answers its probes on (`MeissaConfig.backend` / `MEISSA_BACKEND`)
//! must be invisible in the output. For every backend × thread-count
//! combination the gw-3 run must produce byte-identical templates — same
//! paths, same constraints rendered the same way, same final values — and
//! the same headline statistics. Only *where* verdicts come from (SAT
//! engine vs BDD engine) may move, which the routing counters witness.

use meissa_core::{BackendKind, Meissa, MeissaConfig};
use meissa_suite::gw::{gw, GwScale};

/// A pool-independent, rendering-faithful fingerprint of one run (same
/// shape as the parallel-determinism suite's): per template the node path,
/// canonically-rendered constraints, and rendered final values.
fn fingerprint(run: &meissa_core::engine::RunOutput) -> Vec<String> {
    run.templates
        .iter()
        .map(|t| {
            let path: Vec<String> = t.path.iter().map(|n| format!("{n:?}")).collect();
            let cs: Vec<String> = t
                .constraints
                .iter()
                .map(|&c| format!("{}|{}", run.pool.canonical_key(c), run.pool.display(c)))
                .collect();
            let fv: Vec<String> = t
                .final_values
                .iter()
                .map(|&(f, v)| {
                    format!(
                        "{f:?}={}|{}",
                        run.pool.canonical_key(v),
                        run.pool.display(v)
                    )
                })
                .collect();
            format!("path={path:?} constraints={cs:?} finals={fv:?}")
        })
        .collect()
}

#[test]
fn gw3_templates_identical_across_backends_and_threads() {
    let w = gw(3, GwScale { eips: 4 });
    let run_with = |backend: BackendKind, threads: usize| {
        let run = Meissa {
            config: MeissaConfig {
                backend,
                threads,
                // Small workload: force the parallel machinery on so the
                // worker sessions' fresh BDD engines are exercised too.
                min_paths_per_worker: 0,
                ..MeissaConfig::default()
            },
        }
        .run(&w.program);
        let stats = (
            run.stats.smt_checks,
            run.stats.cache_probes,
            run.stats.cache_hits,
            run.templates.len(),
        );
        (fingerprint(&run), stats, run.stats)
    };

    let (base_fp, _, _) = run_with(BackendKind::Smt, 1);
    for threads in [1usize, 4] {
        // Counters like cache hits legitimately move with the worker count
        // (each worker holds its own verdict cache), so the stats baseline
        // is per thread count; the templates baseline is global.
        let (_, base_stats, _) = run_with(BackendKind::Smt, threads);
        for backend in [BackendKind::Smt, BackendKind::Bdd, BackendKind::Auto] {
            let (fp, stats, raw) = run_with(backend, threads);
            assert_eq!(
                stats, base_stats,
                "{backend:?}/threads={threads}: headline stats diverge from smt at the same thread count"
            );
            assert_eq!(
                fp.len(),
                base_fp.len(),
                "{backend:?}/threads={threads}: template count diverges"
            );
            for (i, (a, b)) in base_fp.iter().zip(&fp).enumerate() {
                assert_eq!(
                    a, b,
                    "{backend:?}/threads={threads}: template {i} diverges from smt/1"
                );
            }
            match backend {
                BackendKind::Smt => assert_eq!(
                    raw.bdd_probes, 0,
                    "smt backend must never consult the BDD engine"
                ),
                BackendKind::Bdd | BackendKind::Auto => assert!(
                    raw.bdd_probes > 0,
                    "{backend:?}/threads={threads}: router never used the BDD engine"
                ),
            }
        }
    }
}
