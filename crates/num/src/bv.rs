//! Fixed-width bitvector values.

use meissa_testkit::json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// A fixed-width bitvector value, the concrete value domain of the data plane.
///
/// The width is carried with the value so that arithmetic can wrap correctly
/// and so that mixed-width operations are caught early (they panic, because a
/// width mismatch is always a compiler bug in this workspace, never a runtime
/// condition).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bv {
    width: u16,
    val: u128,
}

impl Bv {
    /// Maximum supported width in bits.
    pub const MAX_WIDTH: u16 = 128;

    /// Creates a bitvector, truncating `val` to `width` bits.
    ///
    /// # Panics
    /// Panics if `width` is 0 or exceeds [`Bv::MAX_WIDTH`].
    pub fn new(width: u16, val: u128) -> Self {
        assert!(
            (1..=Self::MAX_WIDTH).contains(&width),
            "bitvector width {width} out of range 1..=128"
        );
        Bv {
            width,
            val: val & Self::mask(width),
        }
    }

    /// The all-zeros value of the given width.
    pub fn zero(width: u16) -> Self {
        Bv::new(width, 0)
    }

    /// The all-ones value of the given width.
    pub fn ones(width: u16) -> Self {
        Bv::new(width, u128::MAX)
    }

    /// A single-bit boolean bitvector.
    pub fn bool(b: bool) -> Self {
        Bv::new(1, b as u128)
    }

    fn mask(width: u16) -> u128 {
        if width >= 128 {
            u128::MAX
        } else {
            (1u128 << width) - 1
        }
    }

    /// Width in bits.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// The underlying unsigned value (already truncated to `width` bits).
    pub fn val(&self) -> u128 {
        self.val
    }

    /// Value of bit `i` (`0` = least significant).
    ///
    /// # Panics
    /// Panics if `i >= width`.
    pub fn bit(&self, i: u16) -> bool {
        assert!(i < self.width, "bit index {i} out of width {}", self.width);
        (self.val >> i) & 1 == 1
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.val == 0
    }

    fn check_same_width(&self, other: &Bv, op: &str) {
        assert!(
            self.width == other.width,
            "width mismatch in {op}: {} vs {}",
            self.width,
            other.width
        );
    }

    /// Wrapping addition modulo `2^width`.
    pub fn add(&self, other: &Bv) -> Bv {
        self.check_same_width(other, "add");
        Bv::new(self.width, self.val.wrapping_add(other.val))
    }

    /// Wrapping subtraction modulo `2^width`.
    pub fn sub(&self, other: &Bv) -> Bv {
        self.check_same_width(other, "sub");
        Bv::new(self.width, self.val.wrapping_sub(other.val))
    }

    /// Bitwise AND.
    pub fn and(&self, other: &Bv) -> Bv {
        self.check_same_width(other, "and");
        Bv::new(self.width, self.val & other.val)
    }

    /// Bitwise OR.
    pub fn or(&self, other: &Bv) -> Bv {
        self.check_same_width(other, "or");
        Bv::new(self.width, self.val | other.val)
    }

    /// Bitwise XOR.
    pub fn xor(&self, other: &Bv) -> Bv {
        self.check_same_width(other, "xor");
        Bv::new(self.width, self.val ^ other.val)
    }

    /// Bitwise NOT within the width.
    pub fn not(&self) -> Bv {
        Bv::new(self.width, !self.val)
    }

    /// Logical shift left by a constant amount (shifts ≥ width yield zero).
    pub fn shl(&self, amount: u32) -> Bv {
        if amount as u16 >= self.width {
            Bv::zero(self.width)
        } else {
            Bv::new(self.width, self.val << amount)
        }
    }

    /// Logical shift right by a constant amount (shifts ≥ width yield zero).
    pub fn shr(&self, amount: u32) -> Bv {
        if amount as u16 >= self.width {
            Bv::zero(self.width)
        } else {
            Bv::new(self.width, self.val >> amount)
        }
    }

    /// Unsigned less-than.
    pub fn ult(&self, other: &Bv) -> bool {
        self.check_same_width(other, "ult");
        self.val < other.val
    }

    /// Unsigned greater-than.
    pub fn ugt(&self, other: &Bv) -> bool {
        self.check_same_width(other, "ugt");
        self.val > other.val
    }

    /// Zero-extends or truncates to a new width.
    pub fn resize(&self, width: u16) -> Bv {
        Bv::new(width, self.val)
    }

    /// Extracts bits `[lo, lo+len)` as a new `len`-wide bitvector.
    ///
    /// # Panics
    /// Panics if the range does not fit in the source width.
    pub fn extract(&self, lo: u16, len: u16) -> Bv {
        assert!(
            lo + len <= self.width,
            "extract [{lo}, {}) out of width {}",
            lo + len,
            self.width
        );
        Bv::new(len, self.val >> lo)
    }

    /// Concatenates `self` (high bits) with `low` (low bits).
    pub fn concat(&self, low: &Bv) -> Bv {
        let w = self.width + low.width;
        assert!(w <= Self::MAX_WIDTH, "concat width {w} exceeds 128");
        Bv::new(w, (self.val << low.width) | low.val)
    }

    /// Renders the value as big-endian bytes, zero-padded to ⌈width/8⌉ bytes.
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let nbytes = self.width.div_ceil(8) as usize;
        let all = self.val.to_be_bytes();
        all[16 - nbytes..].to_vec()
    }

    /// Parses from big-endian bytes; the byte slice must be exactly
    /// ⌈width/8⌉ long.
    pub fn from_be_bytes(width: u16, bytes: &[u8]) -> Bv {
        let nbytes = width.div_ceil(8) as usize;
        assert_eq!(bytes.len(), nbytes, "byte length mismatch for width {width}");
        let mut val = 0u128;
        for &b in bytes {
            val = (val << 8) | b as u128;
        }
        Bv::new(width, val)
    }
}

impl ToJson for Bv {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("width".into(), Json::UInt(self.width as u128)),
            ("val".into(), Json::UInt(self.val)),
        ])
    }
}

impl FromJson for Bv {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let width = u16::from_json(v.field("width")?).map_err(|e| e.context("Bv.width"))?;
        let val = u128::from_json(v.field("val")?).map_err(|e| e.context("Bv.val"))?;
        if !(1..=Bv::MAX_WIDTH).contains(&width) {
            return Err(JsonError::new(format!("Bv width {width} out of range")));
        }
        Ok(Bv::new(width, val))
    }
}

impl fmt::Debug for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'d{}", self.width, self.val)
    }
}

impl fmt::Display for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width.is_multiple_of(4) && self.width > 8 {
            write!(f, "0x{:0>width$x}", self.val, width = (self.width / 4) as usize)
        } else {
            write!(f, "{}", self.val)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_truncates_to_width() {
        let b = Bv::new(8, 0x1ff);
        assert_eq!(b.val(), 0xff);
        assert_eq!(b.width(), 8);
    }

    #[test]
    fn add_wraps() {
        let a = Bv::new(8, 250);
        let b = Bv::new(8, 10);
        assert_eq!(a.add(&b).val(), 4);
    }

    #[test]
    fn sub_wraps() {
        let a = Bv::new(8, 3);
        let b = Bv::new(8, 5);
        assert_eq!(a.sub(&b).val(), 254);
    }

    #[test]
    fn bitwise_ops() {
        let a = Bv::new(4, 0b1100);
        let b = Bv::new(4, 0b1010);
        assert_eq!(a.and(&b).val(), 0b1000);
        assert_eq!(a.or(&b).val(), 0b1110);
        assert_eq!(a.xor(&b).val(), 0b0110);
        assert_eq!(a.not().val(), 0b0011);
    }

    #[test]
    fn shifts_saturate_at_width() {
        let a = Bv::new(8, 0xff);
        assert_eq!(a.shl(4).val(), 0xf0);
        assert_eq!(a.shr(4).val(), 0x0f);
        assert_eq!(a.shl(8).val(), 0);
        assert_eq!(a.shr(100).val(), 0);
    }

    #[test]
    fn full_width_128() {
        let a = Bv::ones(128);
        assert_eq!(a.val(), u128::MAX);
        assert_eq!(a.add(&Bv::new(128, 1)).val(), 0);
    }

    #[test]
    fn bit_indexing() {
        let a = Bv::new(8, 0b0100_0001);
        assert!(a.bit(0));
        assert!(!a.bit(1));
        assert!(a.bit(6));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mixed_width_panics() {
        let _ = Bv::new(8, 1).add(&Bv::new(16, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_panics() {
        let _ = Bv::new(0, 0);
    }

    #[test]
    fn extract_and_concat_roundtrip() {
        let a = Bv::new(16, 0xabcd);
        let hi = a.extract(8, 8);
        let lo = a.extract(0, 8);
        assert_eq!(hi.val(), 0xab);
        assert_eq!(lo.val(), 0xcd);
        assert_eq!(hi.concat(&lo), a);
    }

    #[test]
    fn be_bytes_roundtrip() {
        let a = Bv::new(24, 0x01_02_03);
        assert_eq!(a.to_be_bytes(), vec![1, 2, 3]);
        assert_eq!(Bv::from_be_bytes(24, &[1, 2, 3]), a);
    }

    #[test]
    fn be_bytes_subbyte_width() {
        // A 4-bit field still occupies one byte when rendered standalone.
        let a = Bv::new(4, 0xe);
        assert_eq!(a.to_be_bytes(), vec![0x0e]);
        assert_eq!(Bv::from_be_bytes(4, &[0x0e]), a);
    }

    #[test]
    fn comparisons() {
        assert!(Bv::new(8, 3).ult(&Bv::new(8, 4)));
        assert!(Bv::new(8, 5).ugt(&Bv::new(8, 4)));
        assert!(!Bv::new(8, 4).ult(&Bv::new(8, 4)));
    }

    #[test]
    fn display_hex_for_wide_values() {
        assert_eq!(Bv::new(16, 0x800).to_string(), "0x0800");
        assert_eq!(Bv::new(8, 17).to_string(), "17");
    }

    #[test]
    fn json_roundtrip() {
        for bv in [Bv::new(8, 0x42), Bv::ones(128), Bv::bool(true)] {
            let text = bv.to_json_text();
            assert_eq!(Bv::from_json_text(&text).unwrap(), bv, "via `{text}`");
        }
        assert!(Bv::from_json_text(r#"{"width":0,"val":0}"#).is_err());
        assert!(Bv::from_json_text(r#"{"width":200,"val":0}"#).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use meissa_testkit::{prop, prop_assert_eq};

    #[test]
    fn add_sub_roundtrips() {
        // Smoke property for the testkit harness: (a + b) - b == a for any
        // width and payloads.
        prop::check(prop::DEFAULT_CASES, |g| {
            let width = g.range(1..=128u16);
            let a = Bv::new(width, g.bits(width));
            let b = Bv::new(width, g.bits(width));
            prop_assert_eq!(a.add(&b).sub(&b), a, "({a:?} + {b:?}) - {b:?} != {a:?}");
            prop_assert_eq!(a.sub(&b).add(&b), a, "({a:?} - {b:?}) + {b:?} != {a:?}");
            Ok(())
        });
    }

    #[test]
    fn add_commutes() {
        prop::check(prop::DEFAULT_CASES, |g| {
            let width = g.range(1..=128u16);
            let a = Bv::new(width, g.bits(width));
            let b = Bv::new(width, g.bits(width));
            prop_assert_eq!(a.add(&b), b.add(&a));
            Ok(())
        });
    }
}
