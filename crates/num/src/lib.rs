//! Numeric primitives shared across the Meissa workspace.
//!
//! Two types live here:
//!
//! * [`Bv`] — a fixed-width bitvector value (1..=128 bits, `u128`-backed).
//!   Every header field, table key, and intermediate arithmetic result in a
//!   data plane program is a `Bv`. Arithmetic wraps modulo `2^width`, exactly
//!   like P4's `bit<N>` type and like the SMT theory of bitvectors that the
//!   constraint solver decides.
//! * [`BigUint`] — a minimal arbitrary-precision unsigned integer. Path
//!   counts in the paper's evaluation reach `10^390` (Fig. 11c/12c), far
//!   beyond `u128`; `BigUint` supports exactly the operations path counting
//!   needs (add, mul, comparison, decimal/`10^k` rendering).

mod biguint;
mod bv;

pub use biguint::BigUint;
pub use bv::Bv;
