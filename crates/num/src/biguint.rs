//! Minimal arbitrary-precision unsigned integers for path counting.
//!
//! Path counts in Meissa's evaluation reach `10^390` (Fig. 12c). This module
//! implements the handful of operations path counting needs — construction,
//! addition, multiplication, comparison, decimal rendering, and an
//! approximate `log10` for plotting — on a base-`2^32` limb representation.

use meissa_testkit::json::{FromJson, Json, JsonError, ToJson};
use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer (little-endian `u32` limbs).
///
/// The representation is normalized: no trailing zero limbs; zero is the
/// empty limb vector.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut out = BigUint {
            limbs: vec![v as u32, (v >> 32) as u32],
        };
        out.normalize();
        out
    }

    /// True if the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let a = *self.limbs.get(i).unwrap_or(&0) as u64;
            let b = *other.limbs.get(i).unwrap_or(&0) as u64;
            let s = a + b + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// `self * other` (schoolbook; path counting multiplies small factors).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u64 + a as u64 * b as u64 + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// `self * small` with a machine-word factor.
    pub fn mul_u64(&self, small: u64) -> BigUint {
        self.mul(&BigUint::from_u64(small))
    }

    /// `base^exp` by repeated squaring.
    pub fn pow(base: &BigUint, mut exp: u32) -> BigUint {
        let mut result = BigUint::one();
        let mut b = base.clone();
        while exp > 0 {
            if exp & 1 == 1 {
                result = result.mul(&b);
            }
            exp >>= 1;
            if exp > 0 {
                b = b.mul(&b);
            }
        }
        result
    }

    /// Divides by a `u32`, returning (quotient, remainder).
    fn divmod_u32(&self, d: u32) -> (BigUint, u32) {
        assert!(d != 0, "division by zero");
        let mut q = vec![0u32; self.limbs.len()];
        let mut rem = 0u64;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 32) | self.limbs[i] as u64;
            q[i] = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        let mut quo = BigUint { limbs: q };
        quo.normalize();
        (quo, rem as u32)
    }

    /// Approximate base-10 logarithm, suitable for plotting path counts on a
    /// log axis. Returns 0.0 for values 0 and 1.
    pub fn log10(&self) -> f64 {
        if self.limbs.is_empty() {
            return 0.0;
        }
        // value ≈ top * 2^(32*(n-1)) where top uses up to 96 high bits.
        let n = self.limbs.len();
        let mut top = 0f64;
        for i in (n.saturating_sub(3)..n).rev() {
            top = top * 4294967296.0 + self.limbs[i] as f64;
        }
        let shift_limbs = n.saturating_sub(3);
        top.log10() + shift_limbs as f64 * 32.0 * std::f64::consts::LOG10_2
    }

    /// Number of decimal digits (1 for the value 0).
    pub fn decimal_digits(&self) -> usize {
        self.to_string().len()
    }
}

impl ToJson for BigUint {
    fn to_json(&self) -> Json {
        Json::Arr(self.limbs.iter().map(|&l| Json::UInt(l as u128)).collect())
    }
}

impl FromJson for BigUint {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let limbs = Vec::<u32>::from_json(v).map_err(|e| e.context("BigUint.limbs"))?;
        let mut out = BigUint { limbs };
        out.normalize();
        Ok(out)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divmod_u32(1_000_000_000);
            digits.push(r);
            cur = q;
        }
        write!(f, "{}", digits.last().unwrap())?;
        for d in digits.iter().rev().skip(1) {
            write!(f, "{d:09}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(BigUint::one().to_string(), "1");
        assert_eq!(BigUint::from_u64(u64::MAX).to_string(), "18446744073709551615");
    }

    #[test]
    fn add_with_carry() {
        let a = BigUint::from_u64(u64::MAX);
        let b = BigUint::from_u64(1);
        assert_eq!(a.add(&b).to_string(), "18446744073709551616");
    }

    #[test]
    fn mul_small() {
        let a = BigUint::from_u64(123456789);
        let b = BigUint::from_u64(987654321);
        assert_eq!(a.mul(&b).to_string(), "121932631112635269");
    }

    #[test]
    fn pow_of_ten() {
        let ten = BigUint::from_u64(10);
        let p = BigUint::pow(&ten, 50);
        assert_eq!(p.decimal_digits(), 51);
        assert!(p.to_string().starts_with('1'));
        assert!(p.to_string()[1..].bytes().all(|b| b == b'0'));
    }

    #[test]
    fn pow_zero_is_one() {
        assert_eq!(BigUint::pow(&BigUint::from_u64(7), 0), BigUint::one());
    }

    #[test]
    fn log10_matches_digits() {
        // 100^200 = 10^400, the scale of Fig. 12c.
        let p = BigUint::pow(&BigUint::from_u64(100), 200);
        let l = p.log10();
        assert!((l - 400.0).abs() < 0.01, "log10 was {l}");
        assert_eq!(p.decimal_digits(), 401);
    }

    #[test]
    fn log10_small_values() {
        assert_eq!(BigUint::zero().log10(), 0.0);
        assert!((BigUint::from_u64(1000).log10() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ordering() {
        let a = BigUint::pow(&BigUint::from_u64(2), 100);
        let b = BigUint::pow(&BigUint::from_u64(2), 101);
        assert!(a < b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert!(b > BigUint::from_u64(u64::MAX));
    }

    #[test]
    fn mul_by_zero() {
        let a = BigUint::pow(&BigUint::from_u64(3), 77);
        assert!(a.mul(&BigUint::zero()).is_zero());
    }

    #[test]
    fn divmod_roundtrip() {
        let a = BigUint::pow(&BigUint::from_u64(7), 30);
        let (q, r) = a.divmod_u32(13);
        assert_eq!(q.mul_u64(13).add(&BigUint::from_u64(r as u64)), a);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use meissa_testkit::{prop, prop_assert_eq};

    #[test]
    fn add_commutes() {
        prop::check(prop::DEFAULT_CASES, |g| {
            let (a, b) = (g.u64(), g.u64());
            let (x, y) = (BigUint::from_u64(a), BigUint::from_u64(b));
            prop_assert_eq!(x.add(&y), y.add(&x));
            Ok(())
        });
    }

    #[test]
    fn mul_matches_u128() {
        prop::check(prop::DEFAULT_CASES, |g| {
            let (a, b) = (g.u64(), g.u64());
            let prod = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
            prop_assert_eq!(prod.to_string(), (a as u128 * b as u128).to_string());
            Ok(())
        });
    }

    #[test]
    fn add_matches_u128() {
        prop::check(prop::DEFAULT_CASES, |g| {
            let (a, b) = (g.u64(), g.u64());
            let sum = BigUint::from_u64(a).add(&BigUint::from_u64(b));
            prop_assert_eq!(sum.to_string(), (a as u128 + b as u128).to_string());
            Ok(())
        });
    }

    #[test]
    fn display_roundtrips_via_digits() {
        prop::check(prop::DEFAULT_CASES, |g| {
            let a = g.u64();
            prop_assert_eq!(BigUint::from_u64(a).to_string(), a.to_string());
            Ok(())
        });
    }

    #[test]
    fn ordering_matches_u64() {
        prop::check(prop::DEFAULT_CASES, |g| {
            let (a, b) = (g.u64(), g.u64());
            prop_assert_eq!(BigUint::from_u64(a).cmp(&BigUint::from_u64(b)), a.cmp(&b));
            Ok(())
        });
    }

    #[test]
    fn json_roundtrip_arbitrary() {
        use meissa_testkit::json::{FromJson, ToJson};
        prop::check(prop::DEFAULT_CASES, |g| {
            let v = BigUint::pow(&BigUint::from_u64(g.range(2..=1000u64)), g.range(0..=40u32));
            prop_assert_eq!(BigUint::from_json_text(&v.to_json_text()).unwrap(), v);
            Ok(())
        });
    }
}
