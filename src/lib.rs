//! # Meissa-rs
//!
//! A from-scratch Rust reproduction of *"Meissa: Scalable Network Testing for
//! Programmable Data Planes"* (SIGCOMM 2022).
//!
//! This facade crate re-exports the whole workspace so that examples,
//! integration tests, and downstream users can depend on a single crate:
//!
//! * [`num`] — bitvector values and big-integer path counters.
//! * [`smt`] — the incremental bitvector SMT solver (bit-blasting + CDCL).
//! * [`ir`] — the control flow graph of paper §3.1 and its semantics.
//! * [`lang`] — the P4lite frontend: parser, rules, intents, CFG compiler.
//! * [`dataplane`] — the software switch target and fault-injection backend.
//! * [`core`] — symbolic execution (Alg. 1) and code summary (Alg. 2).
//! * [`driver`] — the sender/receiver/checker test driver and reports.
//! * [`netdriver`] — the wire-level driver: switch-agent daemon + TCP
//!   sender/receiver/checker with retries and transport-fault injection.
//! * [`suite`] — the evaluation corpus (Table 1 programs, rule sets, bugs).
//! * [`baselines`] — p4pktgen-like, Gauntlet-like, and Aquila-like baselines.
//! * [`testkit`] — in-repo RNG, property-testing, JSON, and bench support.
//!
//! See `README.md` for a walkthrough and `DESIGN.md` for the system
//! inventory and per-experiment index.

pub use meissa_baselines as baselines;
pub use meissa_core as core;
pub use meissa_dataplane as dataplane;
pub use meissa_driver as driver;
pub use meissa_ir as ir;
pub use meissa_lang as lang;
pub use meissa_netdriver as netdriver;
pub use meissa_num as num;
pub use meissa_smt as smt;
pub use meissa_suite as suite;
pub use meissa_testkit as testkit;
