//! Stateful connection-tracking firewall: a seeded register bug that only
//! multi-packet (k ≥ 2) sequence testing can expose.
//!
//! The program tracks connections in a 1-bit register: an outbound packet
//! (internal → external) marks `seen[0] = 1`; an inbound packet
//! (external → internal) is forwarded only if `seen[0] == 1`, dropped
//! otherwise. The seeded fault miscompiles the *mark* write (the constant
//! `1` is XORed to `0`, the p4c issue-2147 class), so the firewall never
//! remembers outbound flows and wrongly drops legitimate return traffic.
//!
//! No single packet can see this: the mark packet's output bytes and
//! egress port are untouched (the corrupted register is not deparsed),
//! and a lone inbound packet is dropped by reference and target alike
//! (both start with `seen = 0`). Only a *sequence* — mark, then return —
//! observes packet 2 behave differently because of packet 1's write.
//!
//! ```sh
//! cargo run --release --example stateful_firewall
//! ```

use meissa::core::{Meissa, MeissaConfig};
use meissa::dataplane::{Fault, SwitchTarget};
use meissa::driver::TestDriver;
use meissa::lang::{compile, parse_program, parse_rules};
use meissa::netdriver::{Agent, WireDriver};

const PROGRAM: &str = r#"
header conn { src_host: 16; dst_host: 16; dir: 8; }
metadata meta { egress_port: 9; drop: 1; }
register seen[1]: 1;

parser main {
  state start { extract(conn); accept; }
}

action mark_outbound() { seen[0] = 1; meta.egress_port = 1; }
action allow_inbound() { meta.egress_port = 2; }
action drop_() { meta.drop = 1; }

control firewall {
  if (hdr.conn.dir == 0) {
    call mark_outbound();
  } else {
    if (seen[0] == 1) { call allow_inbound(); } else { call drop_(); }
  }
}

pipeline ingress0 { parser = main; control = firewall; }
deparser { emit(conn); }
"#;

/// The seeded state-dependent bug: the connection-table mark write
/// `seen[0] = 1` is miscompiled to `seen[0] = 0`.
fn seeded_fault() -> Fault {
    Fault::WrongConstant {
        field: "REG:seen-POS:0".into(),
        xor_mask: 1,
    }
}

fn engine(k: usize) -> Meissa {
    Meissa {
        config: MeissaConfig {
            k_packets: k,
            ..MeissaConfig::default()
        },
    }
}

fn main() {
    let ast = parse_program(PROGRAM).expect("program parses");
    let rules = parse_rules("").expect("rules parse");
    let program = compile(&ast, &rules).expect("program compiles");
    let driver = TestDriver::new(&program);

    // A faithful build tests clean at every k.
    let faithful = SwitchTarget::new(&program);
    let mut run = engine(2).run_sequences(&program);
    println!(
        "k=2: {} sequence templates over {} unrolled paths",
        run.sequences.len(),
        run.stats.paths_explored
    );
    let report = driver.run_sequences(&mut run, &faithful);
    println!("faithful target, k=2:\n{report}");
    assert!(!report.found_bug(), "a faithful target must test clean");

    // Single-packet testing (k=1) cannot see the broken mark write.
    let buggy = SwitchTarget::with_fault(&program, seeded_fault());
    let mut run = engine(1).run_sequences(&program);
    let report = driver.run_sequences(&mut run, &buggy);
    println!("buggy target, k=1:\n{report}");
    assert!(
        !report.found_bug(),
        "single-packet testing must miss the state-dependent bug"
    );

    // k=2 sequences catch it: the mark packet's write is corrupted, so the
    // return packet is dropped where the reference forwards it.
    let mut run = engine(2).run_sequences(&program);
    let report = driver.run_sequences(&mut run, &buggy);
    println!("buggy target, k=2:\n{report}");
    assert!(report.found_bug(), "k=2 sequences must catch the bug");

    // The wire driver agrees verdict-for-verdict: host the buggy build on
    // an agent and stream the same sequences over TCP.
    let agent = Agent::spawn(
        Some(SwitchTarget::with_fault(&program, seeded_fault())),
        None,
    )
    .expect("spawn switch agent");
    let mut run = engine(2).run_sequences(&program);
    let wire_report = WireDriver::new(&program, agent.addr())
        .run_sequences(&mut run)
        .expect("wire sequence run");
    println!("buggy target over the wire, k=2:\n{wire_report}");
    assert!(wire_report.found_bug(), "the wire driver must agree");
    agent.shutdown();

    println!("stateful_firewall OK: k=1 misses the bug, k=2 catches it (in-process and over the wire).");
}
