//! Figure 1: the multi-switch multi-pipeline data plane.
//!
//! gw-4 spans two switches × four pipes each. Flow A stays inside switch 0
//! (`ingress0 → egress1 → ingress1 → egress0`); flow B crosses into switch
//! 1 and traverses six pipelines end-to-end. This example generates the
//! full-coverage suite, then injects one concrete packet per flow and
//! prints the pipeline traversal each one takes.
//!
//! ```sh
//! cargo run --release --example multi_switch
//! ```

use meissa::core::Meissa;
use meissa::dataplane::{serialize_state, SwitchTarget};
use meissa::ir::ConcreteState;
use meissa::num::Bv;
use meissa::suite::gw;

fn main() {
    // gw-4 at a small rule scale: 8 pipelines across 2 switches.
    let w = gw::gw(4, gw::GwScale { eips: 4 });
    let program = &w.program;
    let paths = meissa::ir::count_paths(&program.cfg).total;
    println!(
        "gw-4: {} pipelines across {} switches, 10^{:.1} possible paths",
        program.num_pipes,
        program.num_switches,
        paths.log10()
    );
    for p in program.cfg.pipelines() {
        println!("  pipeline {}", p.name);
    }

    // Full-coverage test generation across both switches.
    let run = Meissa::new().run(program);
    println!(
        "\n{} templates cover every end-to-end behaviour ({} SMT checks)",
        run.templates.len(),
        run.stats.smt_checks
    );

    // Two hand-picked flows, like Fig. 1's A and B. The EIP rules assign
    // cross = k % 2: EIP .1 (k=0) stays in sw0, EIP .2 (k=1) crosses.
    let fields = &program.cfg.fields;
    let f = |n: &str| fields.get(n).unwrap();
    let mk_flow = |dst: u128, src_port: u128| {
        ConcreteState::from_pairs([
            (f("hdr.ethernet.ether_type"), Bv::new(16, 0x0800)),
            (f("hdr.ipv4.protocol"), Bv::new(8, 6)),
            (f("hdr.ipv4.ttl"), Bv::new(8, 64)),
            (f("hdr.ipv4.src_addr"), Bv::new(32, 0x01020304)),
            (f("hdr.ipv4.dst_addr"), Bv::new(32, dst)),
            (f("hdr.tcp.src_port"), Bv::new(16, src_port)),
        ])
    };

    let target = SwitchTarget::new(program);
    // Source ports pick the QoS class the per-switch gates permit on each
    // flow's egress port (class j is allowed on port (j % 4) + 1).
    for (name, dst, sport) in [
        ("flow A (stays in switch 0)", 0x0a00_0001u128, 1000u128),
        ("flow B (crosses to switch 1)", 0x0a00_0002, 1001),
    ] {
        let input = mk_flow(dst, sport);
        let packet = serialize_state(program, &input, 1).unwrap();
        let out = target.inject(&packet);
        let trace = meissa::driver::trace_execution(program, &input);

        // Which pipelines did the packet traverse? A pipeline was entered
        // iff its entry marker appears in the deterministic trace... the
        // markers are no-ops, so recover traversal from node membership.
        let mut traversed: Vec<String> = Vec::new();
        for step in &trace {
            if let Some(pid) = program.cfg.pipeline_of(step.node) {
                let pname = &program.cfg.pipeline(pid).name;
                if traversed.last() != Some(pname) {
                    traversed.push(pname.clone());
                }
            }
        }
        println!("\n{name}:");
        println!("  traversal: {}", traversed.join(" → "));
        match out.packet {
            Some(p) => println!(
                "  forwarded on port {:?}, {} bytes on the wire",
                out.egress_port.map(|b| b.val()),
                p.len()
            ),
            None => println!("  dropped"),
        }
    }
}
