//! The §6 deployment workflow: testing a NAT gateway by sub-case.
//!
//! "A NAT gateway processes packets going both ways (in and out), supports
//! three protocols (TCP, UDP, and ICMP), and thus results in six sub-cases.
//! For each sub-case, Meissa provides a set of base constraints on the
//! input packet … then network engineers specify test-case-specific
//! constraints." This example reproduces that flow: Meissa generates
//! full-coverage templates once, and each engineer-defined sub-case narrows
//! them with extra constraints before instantiation.
//!
//! ```sh
//! cargo run --release --example nat_gateway
//! ```

use meissa::core::symstate::{SymCtx, ValueStack};
use meissa::core::Meissa;
use meissa::dataplane::SwitchTarget;
use meissa::driver::TestDriver;
use meissa::ir::{AExp, BExp, CmpOp};
use meissa::lang::{compile, parse_program, parse_rules};
use meissa::num::Bv;

const PROGRAM: &str = r#"
header ethernet { dst_addr: 48; src_addr: 48; ether_type: 16; }
header ipv4 {
  version: 4; ihl: 4; diffserv: 8; total_len: 16;
  ttl: 8; protocol: 8; checksum: 16; src_addr: 32; dst_addr: 32;
}
header tcp { src_port: 16; dst_port: 16; checksum: 16; }
header udp { src_port: 16; dst_port: 16; checksum: 16; }
header icmp { kind: 8; code: 8; ident: 16; }
metadata meta { egress_port: 9; drop: 1; natted: 1; }

parser nat_parser {
  state start {
    extract(ethernet);
    select (hdr.ethernet.ether_type) { 0x0800 => parse_ipv4; default => accept; }
  }
  state parse_ipv4 {
    extract(ipv4);
    select (hdr.ipv4.protocol) {
      6  => parse_tcp;
      17 => parse_udp;
      1  => parse_icmp;
      default => accept;
    }
  }
  state parse_tcp { extract(tcp); accept; }
  state parse_udp { extract(udp); accept; }
  state parse_icmp { extract(icmp); accept; }
}

action drop_() { meta.drop = 1; }
action noop() { }
# Outbound: private source is rewritten to the public address.
action snat(public: 32, port: 9) {
  hdr.ipv4.src_addr = public;
  hdr.ipv4.checksum = hash(csum16, 16, hdr.ipv4.src_addr, hdr.ipv4.dst_addr);
  meta.egress_port = port;
  meta.natted = 1;
}
# Inbound: public destination is rewritten to the private host.
action dnat(private: 32, port: 9) {
  hdr.ipv4.dst_addr = private;
  hdr.ipv4.checksum = hash(csum16, 16, hdr.ipv4.src_addr, hdr.ipv4.dst_addr);
  meta.egress_port = port;
  meta.natted = 1;
}

table nat_out {
  key = { hdr.ipv4.src_addr: lpm; }
  actions = { snat; noop; }
  default_action = noop();
}
table nat_in {
  key = { hdr.ipv4.dst_addr: exact; }
  actions = { dnat; noop; }
  default_action = noop();
}

control nat_ctl {
  if (hdr.ipv4.isValid()) {
    apply(nat_in);
    if (meta.natted == 0) {
      apply(nat_out);
    }
    if (meta.natted == 0) {
      call drop_();
    }
  } else {
    call drop_();
  }
}

pipeline nat { parser = nat_parser; control = nat_ctl; }
deparser { emit(ethernet); emit(ipv4); emit(tcp); emit(udp); emit(icmp); }

intent nat_always_translates_or_drops {
  given hdr.ethernet.ether_type == 0x0800;
  expect meta.drop == 1 || meta.natted == 1;
}
"#;

const RULES: &str = r#"
rules nat_out {
  10.0.0.0/8 => snat(0xc6336401, 1);   # 198.51.100.1, uplink
}
rules nat_in {
  0xc6336401 => dnat(0x0a000042, 2);   # public → 10.0.0.66, downlink
}
"#;

fn main() {
    let program = compile(
        &parse_program(PROGRAM).expect("parses"),
        &parse_rules(RULES).expect("rules parse"),
    )
    .expect("compiles");

    let mut run = Meissa::new().run(&program);
    println!(
        "NAT gateway: {} full-coverage templates generated",
        run.templates.len()
    );

    // The engineer's six sub-cases: direction × protocol.
    let fields = &program.cfg.fields;
    let proto = fields.get("hdr.ipv4.protocol").unwrap();
    let src = fields.get("hdr.ipv4.src_addr").unwrap();
    let dst = fields.get("hdr.ipv4.dst_addr").unwrap();
    let ether = fields.get("hdr.ethernet.ether_type").unwrap();

    let eq = |f, w, v| BExp::Cmp(CmpOp::Eq, AExp::Field(f), AExp::Const(Bv::new(w, v)));
    let masked_eq = |f, mask: u128, v: u128| {
        BExp::Cmp(
            CmpOp::Eq,
            AExp::bin(meissa::ir::AOp::And, AExp::Field(f), AExp::Const(Bv::new(32, mask))),
            AExp::Const(Bv::new(32, v)),
        )
    };
    let base = eq(ether, 16, 0x0800);
    let outbound = masked_eq(src, 0xff00_0000, 0x0a00_0000); // src in 10/8
    let inbound = eq(dst, 32, 0xc633_6401); // dst = the public address

    let sub_cases: Vec<(&str, BExp)> = vec![
        ("out/TCP", BExp::and(base.clone(), BExp::and(outbound.clone(), eq(proto, 8, 6)))),
        ("out/UDP", BExp::and(base.clone(), BExp::and(outbound.clone(), eq(proto, 8, 17)))),
        ("out/ICMP", BExp::and(base.clone(), BExp::and(outbound, eq(proto, 8, 1)))),
        ("in/TCP", BExp::and(base.clone(), BExp::and(inbound.clone(), eq(proto, 8, 6)))),
        ("in/UDP", BExp::and(base.clone(), BExp::and(inbound.clone(), eq(proto, 8, 17)))),
        ("in/ICMP", BExp::and(base, BExp::and(inbound, eq(proto, 8, 1)))),
    ];

    let driver = TestDriver::new(&program);
    let target = SwitchTarget::new(&program);
    let mut ctx = SymCtx::new(None);
    let v0 = ValueStack::new();

    for (name, given) in sub_cases {
        let g = ctx.bexp(&mut run.pool, &run.cfg.fields, &v0, &given);
        let mut sent = 0usize;
        let mut passed = 0usize;
        for idx in 0..run.templates.len() {
            let id = run.templates[idx].id;
            let Some(input) =
                run.templates[idx].instantiate(&mut run.pool, &run.cfg.fields, &[g])
            else {
                continue; // this template's path is outside the sub-case
            };
            sent += 1;
            let case = driver.check_input(&target, id, &input);
            if matches!(case.verdict, meissa::driver::Verdict::Pass) {
                passed += 1;
            } else {
                println!("  {name}: case #{id} failed: {:?}", case.verdict);
            }
        }
        println!("sub-case {name:<9} {passed}/{sent} packets passed");
        assert_eq!(passed, sent, "faithful NAT must pass sub-case {name}");
        assert!(sent > 0, "sub-case {name} must be exercised");
    }
    println!("all six NAT sub-cases pass on the faithful target.");
}
