//! The §6 production cases: three real bugs Meissa caught in deployment,
//! reproduced end-to-end — checksum fail-to-update (Table 2 #6), the
//! bf-p4c `setValid` backend bug (#14), and the pragma field-overlap
//! miscompilation (#15) — plus the bug-localization trace engineers read.
//!
//! ```sh
//! cargo run --release --example bug_hunt
//! ```

use meissa::baselines::aquila;
use meissa::core::Meissa;
use meissa::dataplane::SwitchTarget;
use meissa::driver::{TestDriver, Verdict};
use meissa::suite::bugs;

fn main() {
    let cases = bugs::all();
    for index in [6usize, 14, 15] {
        let case = cases.iter().find(|c| c.index == index).unwrap();
        println!("── Table 2 bug #{}: {} ───────────────", case.index, case.name);
        let program = &case.workload.program;

        // Generate the full-coverage suite and run it against the deployed
        // build (which carries the fault for the non-code cases).
        let mut run = Meissa::new().run(program);
        let driver = TestDriver::new(program);
        let target = SwitchTarget::with_fault(program, case.fault.clone());
        let report = driver.run(&mut run, &target);
        assert!(report.found_bug(), "bug #{index} must be detected");

        let failing = report
            .cases
            .iter()
            .find(|c| !matches!(c.verdict, Verdict::Pass | Verdict::Skipped { .. }))
            .expect("a failing case");
        match &failing.verdict {
            Verdict::OutputMismatch { detail } => {
                println!("Meissa: NO PASS — {detail}");
            }
            Verdict::IntentViolation { intent } => {
                println!("Meissa: NO PASS — intent `{intent}` violated");
            }
            _ => unreachable!(),
        }

        // §7 bug localization: the symbolic replay trace engineers review.
        println!("localization trace (first steps):");
        for step in failing.trace.iter().take(6) {
            println!("  {step}");
        }
        if failing.trace.is_empty() {
            println!("  (intent violation: trace omitted — see test report)");
        }

        // Verification cannot see these: the code logic is correct (or the
        // checksum is outside the solver's reach for #6).
        let verdict = aquila::verify(program, None);
        println!(
            "Aquila-like verification: {} (violations: {:?}, skipped intents: {:?})",
            if verdict.found_bug() { "flagged" } else { "clean — bug invisible to verification" },
            verdict.violations,
            verdict.skipped_intents
        );
        assert!(
            !verdict.found_bug(),
            "verification must miss bug #{index} per Table 2"
        );
        println!();
    }
    println!("All three §6 production cases reproduced: testing catches them, verification cannot.");
}
