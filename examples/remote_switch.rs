//! Driving a *remote* switch over the wire protocol (§4's test setup).
//!
//! In production the switch-agent daemon (`meissa-agent`) runs next to the
//! hardware; here it is spawned in-process on a loopback port so the
//! example is self-contained. The client then does everything over TCP:
//! pushes the program to the agent (compiled switch-side with an injected
//! backend fault, standing in for a miscompiling toolchain), streams the
//! generated test cases through the sender/receiver/checker, and prints
//! the localization report for the fault the wire driver catches. At the
//! end it scrapes the agent's Metrics RPC (`fetch_metrics`), which serves
//! live Prometheus-format counters — the same endpoint a real deployment
//! points its monitoring at mid-run.
//!
//! ```sh
//! cargo run --release --example remote_switch
//! ```

use meissa::core::Meissa;
use meissa::dataplane::Fault;
use meissa::driver::Verdict;
use meissa::netdriver::{fetch_metrics, fetch_stats, load_program, Agent, SoakConfig, WireDriver};

const PROGRAM: &str = r#"
header ethernet { dst: 48; src: 48; ether_type: 16; }
header ipv4 { ttl: 8; protocol: 8; src_addr: 32; dst_addr: 32; checksum: 16; }
header vxlan { vni: 24; }
metadata meta { egress_port: 9; drop: 1; }
parser main {
  state start {
    extract(ethernet);
    select (hdr.ethernet.ether_type) { 0x0800 => parse_ipv4; default => accept; }
  }
  state parse_ipv4 { extract(ipv4); accept; }
}
action set_port(port: 9) { meta.egress_port = port; }
action encap(vni: 24) {
  hdr.vxlan.setValid();
  hdr.vxlan.vni = vni;
  hdr.ipv4.checksum = hash(csum16, 16, hdr.ipv4.src_addr, hdr.ipv4.dst_addr);
}
action drop_() { meta.drop = 1; }
table route {
  key = { hdr.ipv4.dst_addr: lpm; }
  actions = { set_port; drop_; }
  default_action = drop_();
}
control ig {
  if (hdr.ipv4.isValid()) {
    apply(route);
    if (meta.drop == 0) { call encap(7); }
  }
}
pipeline ingress0 { parser = main; control = ig; }
deparser { emit(ethernet); emit(ipv4); emit(vxlan); }
intent routed_packets_get_tunneled {
  given hdr.ethernet.ether_type == 0x0800;
  expect meta.drop == 1 || hdr.vxlan.$valid == 1;
}
"#;

const RULES: &str = "rules route { 10.0.0.0/8 => set_port(3); }";

fn main() {
    // The "remote" switch: an empty agent daemon on a loopback port.
    let agent = Agent::spawn(None, None).expect("spawn switch agent");
    println!("switch agent listening on {}", agent.addr());

    // Ship the program to the agent. The switch-side toolchain is broken:
    // checksum-update writes are silently dropped (Table 2's bug class 16).
    load_program(agent.addr(), PROGRAM, RULES, Fault::ChecksumNotUpdated)
        .expect("load program onto agent");
    println!("program loaded agent-side (with a checksum-engine fault)\n");

    // Client side: compile the *intended* program, generate full-coverage
    // test cases, and stream them through the wire driver. The client's
    // local reference execution supplies expected outputs, so any
    // switch-side deviation — here the stale checksum — surfaces.
    let cp = {
        let ast = meissa::lang::parse_program(PROGRAM).unwrap();
        let rules = meissa::lang::parse_rules(RULES).unwrap();
        meissa::lang::compile(&ast, &rules).unwrap()
    };
    let mut run = Meissa::new().run(&cp);
    let report = WireDriver::new(&cp, agent.addr())
        .with_connections(2)
        .run(&mut run)
        .expect("drive remote switch");

    println!("{report}");
    for case in report
        .cases
        .iter()
        .filter(|c| !matches!(c.verdict, Verdict::Pass | Verdict::Skipped { .. }))
    {
        println!("template {} localizes the fault:", case.template_id);
        println!("  verdict: {:?}", case.verdict);
        for line in &case.trace {
            println!("  {line}");
        }
    }

    let (injected, forwarded, dropped, per_port) =
        fetch_stats(agent.addr()).expect("fetch agent stats");
    println!("\nagent saw {injected} injections ({forwarded} forwarded, {dropped} dropped)");
    for (port, n) in per_port {
        println!("  egress port {port}: {n} packets");
    }

    // The agent also exposes Prometheus-format metrics over its Metrics
    // RPC — the scrape path a monitoring stack would use against a live
    // daemon.
    let metrics = fetch_metrics(agent.addr()).expect("fetch agent metrics");
    println!("\nagent metrics (Prometheus text, first lines):");
    for line in metrics.lines().take(6) {
        println!("  {line}");
    }

    // Optional sustained soak: set MEISSA_SOAK_SECS (and MEISSA_FUZZ=1 /
    // MEISSA_FUZZ_SEED for seeded bit-flip fuzzing) to replay the
    // generated cases continuously for a wall-clock window. Against this
    // deliberately faulty agent the soak keeps catching the checksum
    // divergence and classifies every occurrence.
    if std::env::var_os("MEISSA_SOAK_SECS").is_some() {
        let cfg = SoakConfig::from_env();
        println!("\nsoaking for {:?}...", cfg.duration);
        let mut run = Meissa::new().run(&cp);
        let stats = WireDriver::new(&cp, agent.addr())
            .with_connections(2)
            .soak(&mut run, cfg)
            .expect("soak remote switch");
        println!("{stats}");
    }

    agent.shutdown();
    assert!(report.found_bug(), "the checksum fault must be caught");
}
