//! Token-bucket rate limiter: a miscompiled register *increment* that only
//! multi-packet (k ≥ 2) sequence testing can expose.
//!
//! The program polices a flow with a one-token bucket held in a register:
//! the first packet of a window is admitted and spends the token
//! (`used[0] = used[0] + 1`); every later packet is dropped until the
//! control plane refills. The seeded fault is the p4c wrong-destination
//! class: the increment lands on scratch metadata instead of the register,
//! so the bucket never empties and the limiter admits unbounded traffic.
//!
//! A single packet cannot tell: the admitted packet's bytes and egress
//! port are correct, and the clobbered scratch field is not deparsed. The
//! two-packet sequence (admit, then police) catches it — the reference
//! drops packet 2, the buggy target forwards it.
//!
//! ```sh
//! cargo run --release --example token_bucket
//! ```

use meissa::core::{Meissa, MeissaConfig};
use meissa::dataplane::{Fault, SwitchTarget};
use meissa::driver::TestDriver;
use meissa::lang::{compile, parse_program, parse_rules};

const PROGRAM: &str = r#"
header pkt { flow: 8; len: 8; }
metadata meta { egress_port: 9; drop: 1; scratch: 8; }
register used[1]: 8;

parser main {
  state start { extract(pkt); accept; }
}

action admit() { used[0] = used[0] + 1; meta.egress_port = 1; }
action police() { meta.drop = 1; }

control limiter {
  if (used[0] == 0) { call admit(); } else { call police(); }
}

pipeline ingress0 { parser = main; control = limiter; }
deparser { emit(pkt); }
"#;

/// The seeded state-dependent bug: the token-spend increment is compiled
/// onto the wrong destination, leaving the register untouched.
fn seeded_fault() -> Fault {
    Fault::WrongAssignment {
        intended: "REG:used-POS:0".into(),
        actual: "meta.scratch".into(),
    }
}

fn engine(k: usize) -> Meissa {
    Meissa {
        config: MeissaConfig {
            k_packets: k,
            ..MeissaConfig::default()
        },
    }
}

fn main() {
    let ast = parse_program(PROGRAM).expect("program parses");
    let rules = parse_rules("").expect("rules parse");
    let program = compile(&ast, &rules).expect("program compiles");
    let driver = TestDriver::new(&program);

    // From a zeroed bucket, only one two-packet sequence is feasible:
    // packet 1 spends the token, packet 2 must be policed.
    let mut run = engine(2).run_sequences(&program);
    println!(
        "k=2: {} sequence template(s) over {} unrolled paths",
        run.sequences.len(),
        run.stats.paths_explored
    );

    // A faithful build tests clean.
    let faithful = SwitchTarget::new(&program);
    let report = driver.run_sequences(&mut run, &faithful);
    println!("faithful target, k=2:\n{report}");
    assert!(!report.found_bug(), "a faithful target must test clean");

    // Single-packet testing cannot see the lost increment.
    let buggy = SwitchTarget::with_fault(&program, seeded_fault());
    let mut run = engine(1).run_sequences(&program);
    let report = driver.run_sequences(&mut run, &buggy);
    println!("buggy target, k=1:\n{report}");
    assert!(
        !report.found_bug(),
        "single-packet testing must miss the state-dependent bug"
    );

    // The (admit, police) sequence catches it: packet 2 is forwarded by
    // the buggy target where the reference polices it.
    let mut run = engine(2).run_sequences(&program);
    let report = driver.run_sequences(&mut run, &buggy);
    println!("buggy target, k=2:\n{report}");
    assert!(report.found_bug(), "k=2 sequences must catch the bug");

    println!("token_bucket OK: k=1 misses the lost token spend, k=2 catches it.");
}
