//! Quickstart: write a P4lite program, install rules, generate a full-path
//! test suite with Meissa, and run it against the software switch target.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use meissa::core::Meissa;
use meissa::dataplane::SwitchTarget;
use meissa::driver::TestDriver;
use meissa::lang::{compile, parse_program, parse_rules};

/// A small L3 router: parse Ethernet/IPv4, route on an LPM table, rewrite
/// the destination MAC on the chosen port.
const PROGRAM: &str = r#"
header ethernet { dst_addr: 48; src_addr: 48; ether_type: 16; }
header ipv4 {
  version: 4; ihl: 4; diffserv: 8; total_len: 16;
  ttl: 8; protocol: 8; checksum: 16; src_addr: 32; dst_addr: 32;
}
metadata meta { egress_port: 9; drop: 1; }

parser main {
  state start {
    extract(ethernet);
    select (hdr.ethernet.ether_type) {
      0x0800 => parse_ipv4;
      default => accept;
    }
  }
  state parse_ipv4 { extract(ipv4); accept; }
}

action set_port(port: 9) { meta.egress_port = port; hdr.ipv4.ttl = hdr.ipv4.ttl - 1; }
action set_dmac(mac: 48) { hdr.ethernet.dst_addr = mac; }
action drop_() { meta.drop = 1; }
action noop() { }

table ipv4_lpm {
  key = { hdr.ipv4.dst_addr: lpm; }
  actions = { set_port; drop_; }
  default_action = drop_();
}
table dmac_rewrite {
  key = { meta.egress_port: exact; }
  actions = { set_dmac; noop; }
  default_action = noop();
}

control ingress {
  if (hdr.ipv4.isValid()) {
    apply(ipv4_lpm);
    if (meta.drop == 0) { apply(dmac_rewrite); }
  } else {
    call drop_();
  }
}

pipeline ig { parser = main; control = ingress; }
deparser { emit(ethernet); emit(ipv4); }

# The operator's high-level intent (LPI-style).
intent every_ipv4_packet_is_decided {
  given hdr.ethernet.ether_type == 0x0800;
  expect meta.drop == 1 || meta.egress_port != 0;
}
"#;

const RULES: &str = r#"
rules ipv4_lpm {
  10.0.0.0/8     => set_port(1);
  192.168.0.0/16 => set_port(2);
}
rules dmac_rewrite {
  1 => set_dmac(0x00aa00000001);
  2 => set_dmac(0x00aa00000002);
}
"#;

fn main() {
    // 1. Frontend: parse program + rules, compile to the CFG.
    let ast = parse_program(PROGRAM).expect("program parses");
    let rules = parse_rules(RULES).expect("rules parse");
    let program = compile(&ast, &rules).expect("program compiles");
    println!(
        "compiled: {} LOC, {} pipes, {} possible paths",
        program.loc,
        program.num_pipes,
        meissa::ir::count_paths(&program.cfg).total
    );

    // 2. Test case generation with full path coverage (Alg. 1 + Alg. 2).
    let mut run = Meissa::new().run(&program);
    println!(
        "generated {} test case templates ({} SMT checks)",
        run.templates.len(),
        run.stats.smt_checks
    );
    for t in &run.templates {
        let conds: Vec<String> = t
            .constraints
            .iter()
            .map(|&c| run.pool.display(c))
            .collect();
        println!("  template #{}: {}", t.id, conds.join(" ∧ "));
    }

    // 3. Drive the switch under test: inject concrete packets, compare the
    //    captured outputs against source semantics + intents.
    let driver = TestDriver::new(&program);
    let target = SwitchTarget::new(&program); // a faithful build
    let report = driver.run(&mut run, &target);
    println!("\n{report}");
    assert!(!report.found_bug(), "a faithful target must test clean");

    // 4. The same suite against a mis-compiled build catches the bug.
    let buggy = SwitchTarget::with_fault(
        &program,
        meissa::dataplane::Fault::WrongConstant {
            field: "hdr.ethernet.dst_addr".into(),
            xor_mask: 0xff,
        },
    );
    let mut run = Meissa::new().run(&program);
    let report = driver.run(&mut run, &buggy);
    println!("{report}");
    assert!(report.found_bug(), "the corrupted dmac must be detected");
    println!("quickstart OK: faithful build passes, faulty build caught.");
}
